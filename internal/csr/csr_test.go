package csr_test

import (
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/conformance"
	"blockspmv/internal/csr"
	"blockspmv/internal/floats"
	"blockspmv/internal/mat"
	"blockspmv/internal/testmat"
)

func TestConformance(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		for _, impl := range blocks.Impls() {
			t.Run(name+"/"+impl.String(), func(t *testing.T) {
				conformance.Check(t, m, csr.FromCOO(m, impl))
			})
		}
	}
}

func TestConformanceSingle(t *testing.T) {
	for name, m := range testmat.Corpus[float32]() {
		for _, impl := range blocks.Impls() {
			t.Run(name+"/"+impl.String(), func(t *testing.T) {
				conformance.Check(t, m, csr.FromCOO(m, impl))
			})
		}
	}
}

func TestMatrixBytes(t *testing.T) {
	m := testmat.Random[float64](100, 100, 0.1, 1)
	a := csr.FromCOO(m, blocks.Scalar)
	want := int64(m.NNZ())*(8+4) + int64(m.Rows()+1)*4
	if got := a.MatrixBytes(); got != want {
		t.Errorf("MatrixBytes = %d, want %d", got, want)
	}
	if got := mat.CSRWorkingSetBytes(m.Rows(), m.NNZ(), 8); got != want {
		t.Errorf("CSRWorkingSetBytes = %d, want %d", got, want)
	}
}

func TestComponentsDegenerate(t *testing.T) {
	m := testmat.Random[float64](50, 50, 0.1, 2)
	a := csr.FromCOO(m, blocks.Scalar)
	comps := a.Components()
	if len(comps) != 1 {
		t.Fatalf("CSR has %d components, want 1", len(comps))
	}
	if !comps[0].Shape.IsUnit() {
		t.Errorf("CSR component shape = %v, want 1x1", comps[0].Shape)
	}
	if comps[0].Blocks != int64(m.NNZ()) {
		t.Errorf("CSR component blocks = %d, want nnz %d", comps[0].Blocks, m.NNZ())
	}
}

func TestZeroColInd(t *testing.T) {
	m := testmat.Random[float64](60, 60, 0.15, 3)
	a := csr.FromCOO(m, blocks.Scalar)
	z := a.ZeroColInd()

	if z.NNZ() != a.NNZ() || z.MatrixBytes() != a.MatrixBytes() {
		t.Fatalf("zeroed clone changed size: nnz %d->%d bytes %d->%d",
			a.NNZ(), z.NNZ(), a.MatrixBytes(), z.MatrixBytes())
	}
	// Every product element must equal rowsum * x[0].
	x := floats.RandVector[float64](60, 4)
	y := make([]float64, 60)
	z.Mul(x, y)
	for r := 0; r < 60; r++ {
		var rowSum float64
		for _, e := range m.Entries() {
			if int(e.Row) == r {
				rowSum += e.Val
			}
		}
		want := rowSum * x[0]
		if d := y[r] - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d: zeroed product %g, want %g", r, y[r], want)
		}
	}
}

func TestFromRawPanics(t *testing.T) {
	cases := []struct {
		name   string
		rowPtr []int32
		colInd []int32
		val    []float64
	}{
		{"short rowptr", []int32{0, 1}, []int32{0}, []float64{1}},
		{"mismatched lengths", []int32{0, 1, 1}, []int32{0, 1}, []float64{1}},
		{"nonmonotone", []int32{0, 2, 1}, []int32{0, 1}, []float64{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("FromRaw(%s) did not panic", tc.name)
				}
			}()
			var n int
			if tc.name == "short rowptr" {
				n = 2
			} else {
				n = len(tc.rowPtr) - 1
			}
			csr.FromRaw(n, 4, tc.rowPtr, tc.colInd, tc.val, blocks.Scalar)
		})
	}
}

func TestMulDimensionPanic(t *testing.T) {
	m := testmat.Random[float64](10, 20, 0.2, 5)
	a := csr.FromCOO(m, blocks.Scalar)
	defer func() {
		if recover() == nil {
			t.Error("Mul with wrong dimensions did not panic")
		}
	}()
	a.Mul(make([]float64, 10), make([]float64, 10))
}

func TestVectorKernelMatchesScalar(t *testing.T) {
	// Rows with lengths around the unroll width (0..9) stress the tails.
	m := mat.New[float64](10, 64)
	for r := 0; r < 10; r++ {
		for c := 0; c < r; c++ {
			m.Add(int32(r), int32(c*5), float64(r*10+c)+0.5)
		}
	}
	m.Finalize()
	s := csr.FromCOO(m, blocks.Scalar)
	v := csr.FromCOO(m, blocks.Vector)
	x := floats.RandVector[float64](64, 6)
	ys := make([]float64, 10)
	yv := make([]float64, 10)
	s.Mul(x, ys)
	v.Mul(x, yv)
	if !floats.EqualWithin(ys, yv, 1e-12) {
		t.Errorf("vector kernel diverges from scalar: %v vs %v", yv, ys)
	}
}
