package vbl_test

import (
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/csr"
	"blockspmv/internal/floats"
	"blockspmv/internal/testmat"
	"blockspmv/internal/vbl"
)

// BenchmarkMulVsCSR compares 1D-VBL against CSR on run-structured data
// (VBL's best case) — the trade the paper evaluates.
func BenchmarkMulVsCSR(b *testing.B) {
	m := testmat.Runs[float64](4000, 8000, 1)
	x := floats.RandVector[float64](8000, 2)
	y := make([]float64, 4000)
	v := vbl.New(m, blocks.Scalar)
	c := csr.FromCOO(m, blocks.Scalar)
	b.Run("1D-VBL", func(b *testing.B) {
		b.SetBytes(v.MatrixBytes())
		b.ReportMetric(v.AvgBlockLen(), "avg-block-len")
		for i := 0; i < b.N; i++ {
			v.Mul(x, y)
		}
	})
	b.Run("CSR", func(b *testing.B) {
		b.SetBytes(c.MatrixBytes())
		for i := 0; i < b.N; i++ {
			c.Mul(x, y)
		}
	})
}

// BenchmarkScattered is VBL's worst case: singleton blocks make the extra
// indirection pure overhead.
func BenchmarkScattered(b *testing.B) {
	m := testmat.Random[float64](4000, 4000, 0.002, 3)
	x := floats.RandVector[float64](4000, 4)
	y := make([]float64, 4000)
	v := vbl.New(m, blocks.Scalar)
	c := csr.FromCOO(m, blocks.Scalar)
	b.Run("1D-VBL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.Mul(x, y)
		}
	})
	b.Run("CSR", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Mul(x, y)
		}
	})
}
