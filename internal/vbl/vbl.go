// Package vbl implements the one-dimensional Variable Block Length format
// of Pinar & Heath [12].
//
// 1D-VBL stores maximal horizontal runs of consecutive nonzeros as
// variable-size blocks. The paper's four arrays hold the matrix: val (the
// nonzero values), rowPtr (n+1 4-byte pointers into val, as in CSR), bcol
// (the 4-byte starting column of each block) and bsize (the size of each
// block in a single byte), plus a rowBlk seed index (first block of each
// row) that lets the parallel executor start a multiply at any row. The
// 1-byte size limits blocks to 255 elements; longer runs are split into
// 255-element chunks, which the paper notes is rare. NewDP replaces run
// detection with the per-row cost-model DP of internal/partition, which
// may merge runs across small gaps (storing explicit zero fill) when that
// shrinks the exact stream.
package vbl

import (
	"fmt"

	"blockspmv/internal/blocks"
	"blockspmv/internal/floats"
	"blockspmv/internal/formats"
	"blockspmv/internal/mat"
	"blockspmv/internal/partition"
)

// MaxBlockLen is the largest representable block: sizes are stored in one
// byte.
const MaxBlockLen = 255

// Matrix is a sparse matrix in 1D-VBL format.
type Matrix[T floats.Float] struct {
	rows, cols int
	val        []T
	rowPtr     []int32 // len rows+1, indexes val
	bcol       []int32 // starting column per block
	bsize      []uint8 // block sizes, 1..255

	// wideSize, when non-nil, replaces bsize with 4-byte block sizes and
	// lifts the 255-element split limit. It exists for the index-width
	// ablation (the paper chose 1-byte sizes to shave the working set);
	// see NewWide.
	wideSize []int32

	// rowBlk is an auxiliary index (first block of each row) that seeds
	// MulRange at partition boundaries. The sequential multiply streams
	// blocks with a running cursor and rarely reads it, but it is resident
	// state the structure carries, so MatrixBytes counts it (the paper's
	// four-array layout predates the range-parallel executor that needs
	// the seed index).
	rowBlk []int32

	// nnz is the original nonzero count; val may additionally hold
	// explicit zero fill when the DP partition merges runs across small
	// gaps (NewDP).
	nnz int64

	// dp marks instances whose blocks come from the cost-model DP of
	// internal/partition rather than run detection.
	dp bool

	impl blocks.Impl
}

// New converts a finalized coordinate matrix to 1D-VBL with the paper's
// 1-byte block sizes.
func New[T floats.Float](m *mat.COO[T], impl blocks.Impl) *Matrix[T] {
	return build(m, impl, false)
}

// NewWide converts to a 1D-VBL variant with 4-byte block sizes and no run
// splitting. It exists for the index-width ablation: the paper's 1-byte
// choice trades the (rare) splitting of >255-element runs for 3 fewer
// bytes of traffic per block.
func NewWide[T floats.Float](m *mat.COO[T], impl blocks.Impl) *Matrix[T] {
	return build(m, impl, true)
}

// NewDP converts a finalized coordinate matrix to 1D-VBL with block
// boundaries chosen by the per-row dynamic program of internal/partition,
// which minimizes each row's exact stream bytes: runs may be merged
// across small gaps (storing explicit zero fill) when the fill costs less
// than the saved per-block indices — never worse than New's run
// detection, and only actually different for small scalar types.
func NewDP[T floats.Float](m *mat.COO[T], impl blocks.Impl) *Matrix[T] {
	if !m.Finalized() {
		panic("vbl: matrix must be finalized")
	}
	a := &Matrix[T]{
		rows:   m.Rows(),
		cols:   m.Cols(),
		val:    make([]T, 0, m.NNZ()),
		rowPtr: make([]int32, m.Rows()+1),
		rowBlk: make([]int32, m.Rows()+1),
		nnz:    int64(m.NNZ()),
		dp:     true,
		impl:   impl,
	}
	valSize := floats.SizeOf[T]()
	entries := m.Entries()
	cols := make([]int32, 0, 64)
	vals := make([]T, 0, 64)
	for lo := 0; lo < len(entries); {
		row := entries[lo].Row
		hi := lo
		cols, vals = cols[:0], vals[:0]
		for hi < len(entries) && entries[hi].Row == row {
			cols = append(cols, entries[hi].Col)
			vals = append(vals, entries[hi].Val)
			hi++
		}
		cursor := 0
		partition.VBLRowBlocks(cols, valSize, func(start, span int32) {
			a.bcol = append(a.bcol, start)
			a.bsize = append(a.bsize, uint8(span))
			base := len(a.val)
			a.val = append(a.val, make([]T, span)...)
			for cursor < len(cols) && cols[cursor] < start+span {
				a.val[base+int(cols[cursor]-start)] = vals[cursor]
				cursor++
			}
		})
		a.rowPtr[row+1] = int32(len(a.val))
		a.rowBlk[row+1] = int32(len(a.bcol))
		lo = hi
	}
	for r := 0; r < a.rows; r++ {
		if a.rowPtr[r+1] < a.rowPtr[r] {
			a.rowPtr[r+1] = a.rowPtr[r]
			a.rowBlk[r+1] = a.rowBlk[r]
		}
	}
	return a
}

func build[T floats.Float](m *mat.COO[T], impl blocks.Impl, wide bool) *Matrix[T] {
	if !m.Finalized() {
		panic("vbl: matrix must be finalized")
	}
	a := &Matrix[T]{
		rows:   m.Rows(),
		cols:   m.Cols(),
		val:    make([]T, 0, m.NNZ()),
		rowPtr: make([]int32, m.Rows()+1),
		rowBlk: make([]int32, m.Rows()+1),
		nnz:    int64(m.NNZ()),
		impl:   impl,
	}
	addBlock := func(col int32, n int) {
		a.bcol = append(a.bcol, col)
		if wide {
			a.wideSize = append(a.wideSize, int32(n))
		} else {
			a.bsize = append(a.bsize, uint8(n))
		}
	}
	entries := m.Entries()
	for lo := 0; lo < len(entries); {
		row := entries[lo].Row
		hi := lo
		for hi < len(entries) && entries[hi].Row == row {
			hi++
		}
		for i := lo; i < hi; {
			j := i + 1
			for j < hi && entries[j].Col == entries[j-1].Col+1 {
				j++
			}
			if wide {
				addBlock(entries[i].Col, j-i)
				for k := i; k < j; k++ {
					a.val = append(a.val, entries[k].Val)
				}
			} else {
				// Split runs longer than 255 into chunks.
				for off := i; off < j; off += MaxBlockLen {
					n := min(j-off, MaxBlockLen)
					addBlock(entries[off].Col, n)
					for k := 0; k < n; k++ {
						a.val = append(a.val, entries[off+k].Val)
					}
				}
			}
			i = j
		}
		a.rowPtr[row+1] = int32(len(a.val))
		a.rowBlk[row+1] = int32(len(a.bcol))
		lo = hi
	}
	for r := 0; r < a.rows; r++ {
		if a.rowPtr[r+1] < a.rowPtr[r] {
			a.rowPtr[r+1] = a.rowPtr[r]
			a.rowBlk[r+1] = a.rowBlk[r]
		}
	}
	return a
}

// Blocks returns the number of variable-length blocks.
func (a *Matrix[T]) Blocks() int64 { return int64(len(a.bcol)) }

// Wide reports whether this instance uses 4-byte block sizes.
func (a *Matrix[T]) Wide() bool { return a.wideSize != nil }

func (a *Matrix[T]) blockLen(bi int) int {
	if a.wideSize != nil {
		return int(a.wideSize[bi])
	}
	return int(a.bsize[bi])
}

// AvgBlockLen returns the mean block length, a structure diagnostic.
func (a *Matrix[T]) AvgBlockLen() float64 {
	if len(a.bcol) == 0 {
		return 0
	}
	return float64(len(a.val)) / float64(len(a.bcol))
}

// Name implements formats.Instance.
func (a *Matrix[T]) Name() string {
	n := "1D-VBL"
	if a.wideSize != nil {
		n += "-wide"
	}
	if a.dp {
		n += "-DP"
	}
	if a.impl == blocks.Vector {
		n += "/simd"
	}
	return n
}

// Rows implements formats.Instance.
func (a *Matrix[T]) Rows() int { return a.rows }

// Cols implements formats.Instance.
func (a *Matrix[T]) Cols() int { return a.cols }

// NNZ implements formats.Instance.
func (a *Matrix[T]) NNZ() int64 { return a.nnz }

// StoredScalars implements formats.Instance: the stored values including
// any zero fill a DP partition introduced (run detection stores exactly
// NNZ).
func (a *Matrix[T]) StoredScalars() int64 { return int64(len(a.val)) }

// MatrixBytes implements formats.Instance. It covers every array of the
// structure: val, rowPtr, bcol, the block sizes (1 byte each, or 4 for
// the wide variant) and the rowBlk seed index.
func (a *Matrix[T]) MatrixBytes() int64 {
	s := int64(floats.SizeOf[T]())
	return int64(len(a.val))*s + int64(len(a.rowPtr))*4 +
		int64(len(a.bcol))*4 + int64(len(a.bsize)) + int64(len(a.wideSize))*4 +
		int64(len(a.rowBlk))*4
}

// Components implements formats.Instance. Variable-size blocks have no
// fixed shape, so the component reports the degenerate 1x1 shape with
// Blocks equal to the stored scalars — the per-scalar normalization the
// profiling layer uses for the VBL kernel variant, mirroring how CSR is
// modelled as 1x1 blocking with nb = nnz.
func (a *Matrix[T]) Components() []formats.Component {
	return []formats.Component{{
		Shape:   blocks.RectShape(1, 1),
		Impl:    a.impl,
		Blocks:  a.StoredScalars(),
		WSBytes: a.MatrixBytes(),
		Variant: blocks.VBL,
	}}
}

// RowAlign implements formats.Instance.
func (a *Matrix[T]) RowAlign() int { return 1 }

// RowWeights implements formats.Instance.
func (a *Matrix[T]) RowWeights() []int64 {
	w := make([]int64, a.rows)
	for r := 0; r < a.rows; r++ {
		w[r] = int64(a.rowPtr[r+1] - a.rowPtr[r])
	}
	return w
}

// Mul implements formats.Instance.
func (a *Matrix[T]) Mul(x, y []T) {
	formats.CheckDims[T](a, x, y)
	floats.Fill(y, 0)
	a.MulRange(x, y, 0, a.rows)
}

// MulRange implements formats.Instance.
func (a *Matrix[T]) MulRange(x, y []T, r0, r1 int) {
	if r0 < 0 || r1 > a.rows || r0 > r1 {
		panic(fmt.Sprintf("vbl: MulRange [%d,%d) out of bounds", r0, r1))
	}
	val, bcol := a.val, a.bcol
	bi := int(a.rowBlk[r0])
	vi := int(a.rowPtr[r0])
	for r := r0; r < r1; r++ {
		end := int(a.rowPtr[r+1])
		var acc T
		for vi < end {
			c := int(bcol[bi])
			n := a.blockLen(bi)
			bi++
			v := val[vi : vi+n]
			xs := x[c : c+n]
			k := 0
			var a0, a1, a2, a3 T
			for ; k+4 <= n; k += 4 {
				a0 += v[k] * xs[k]
				a1 += v[k+1] * xs[k+1]
				a2 += v[k+2] * xs[k+2]
				a3 += v[k+3] * xs[k+3]
			}
			for ; k < n; k++ {
				a0 += v[k] * xs[k]
			}
			acc += a0 + a1 + a2 + a3
			vi += n
		}
		y[r] += acc
	}
}

// MulRangeMulti implements formats.Instance: each row's block walk is
// replayed per panel column from the row's saved cursors (val and block
// metadata stay cache-resident within a row), reproducing MulRange's
// four-chain accumulation order per column bit for bit with strided
// panel gathers.
func (a *Matrix[T]) MulRangeMulti(x, y []T, k, r0, r1 int) {
	if r0 < 0 || r1 > a.rows || r0 > r1 {
		panic(fmt.Sprintf("vbl: MulRangeMulti [%d,%d) out of bounds", r0, r1))
	}
	if k == 0 {
		return
	}
	val, bcol := a.val, a.bcol
	for r := r0; r < r1; r++ {
		vi0, end := int(a.rowPtr[r]), int(a.rowPtr[r+1])
		bi0 := int(a.rowBlk[r])
		for l := 0; l < k; l++ {
			vi, bi := vi0, bi0
			var acc T
			for vi < end {
				c := int(bcol[bi])
				n := a.blockLen(bi)
				bi++
				v := val[vi : vi+n]
				j := 0
				var a0, a1, a2, a3 T
				for ; j+4 <= n; j += 4 {
					a0 += v[j] * x[(c+j)*k+l]
					a1 += v[j+1] * x[(c+j+1)*k+l]
					a2 += v[j+2] * x[(c+j+2)*k+l]
					a3 += v[j+3] * x[(c+j+3)*k+l]
				}
				for ; j < n; j++ {
					a0 += v[j] * x[(c+j)*k+l]
				}
				acc += a0 + a1 + a2 + a3
				vi += n
			}
			y[r*k+l] += acc
		}
	}
}

var _ formats.Instance[float64] = (*Matrix[float64])(nil)

// WithImpl implements formats.Instance. 1D-VBL has a single kernel; the
// class only affects the instance name.
func (a *Matrix[T]) WithImpl(impl blocks.Impl) formats.Instance[T] {
	b := *a
	b.impl = impl
	return &b
}
