package vbl_test

import (
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/conformance"
	"blockspmv/internal/mat"
	"blockspmv/internal/testmat"
	"blockspmv/internal/vbl"
)

func TestConformance(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		t.Run(name, func(t *testing.T) {
			conformance.Check(t, m, vbl.New(m, blocks.Scalar))
		})
	}
}

func TestConformanceSingle(t *testing.T) {
	for name, m := range testmat.Corpus[float32]() {
		t.Run(name, func(t *testing.T) {
			conformance.Check(t, m, vbl.New(m, blocks.Scalar))
		})
	}
}

func TestBlockCountMatchesPatternCount(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		a := vbl.New(m, blocks.Scalar)
		want := blocks.CountVBL(mat.PatternOf(m), vbl.MaxBlockLen)
		if a.Blocks() != want {
			t.Errorf("%s: constructed %d blocks, counted %d", name, a.Blocks(), want)
		}
	}
}

func TestLongRunSplitting(t *testing.T) {
	// A single row of 600 consecutive nonzeros must split into blocks of
	// 255+255+90.
	m := mat.New[float64](1, 600)
	for c := 0; c < 600; c++ {
		m.Add(0, int32(c), float64(c%9)+1)
	}
	m.Finalize()
	a := vbl.New(m, blocks.Scalar)
	if a.Blocks() != 3 {
		t.Fatalf("600-run split into %d blocks, want 3", a.Blocks())
	}
	if a.NNZ() != 600 || a.StoredScalars() != 600 {
		t.Errorf("nnz/stored = %d/%d, want 600/600", a.NNZ(), a.StoredScalars())
	}
	conformance.Check(t, m, a)
}

func TestDenseMatrixFormsOneBlockPerRow(t *testing.T) {
	m := mat.Dense[float64](20, 30)
	a := vbl.New(m, blocks.Scalar)
	if a.Blocks() != 20 {
		t.Errorf("dense 20x30 has %d blocks, want 20 (one per row)", a.Blocks())
	}
	if a.AvgBlockLen() != 30 {
		t.Errorf("avg block length = %g, want 30", a.AvgBlockLen())
	}
}

func TestMatrixBytesFourArrays(t *testing.T) {
	m := testmat.Runs[float64](10, 400, 3)
	a := vbl.New(m, blocks.Scalar)
	want := a.NNZ()*8 + int64(m.Rows()+1)*8 + a.Blocks()*4 + a.Blocks()
	if got := a.MatrixBytes(); got != want {
		t.Errorf("MatrixBytes = %d, want %d (val + rowPtr + rowBlk + bcol + 1-byte bsize)", got, want)
	}
}

func TestScatteredSinglesAreSingletonBlocks(t *testing.T) {
	m := mat.New[float64](5, 100)
	cols := []int32{3, 17, 40, 90}
	for i, c := range cols {
		m.Add(int32(i), c, float64(i+1))
	}
	m.Finalize()
	a := vbl.New(m, blocks.Scalar)
	if a.Blocks() != int64(len(cols)) {
		t.Errorf("scattered singles form %d blocks, want %d", a.Blocks(), len(cols))
	}
	if a.AvgBlockLen() != 1 {
		t.Errorf("avg block length = %g, want 1", a.AvgBlockLen())
	}
}

func TestWideVariant(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		t.Run(name, func(t *testing.T) {
			conformance.Check(t, m, vbl.NewWide(m, blocks.Scalar))
		})
	}
}

func TestWideNoSplitting(t *testing.T) {
	m := mat.New[float64](1, 600)
	for c := 0; c < 600; c++ {
		m.Add(0, int32(c), float64(c%9)+1)
	}
	m.Finalize()
	narrow := vbl.New(m, blocks.Scalar)
	wide := vbl.NewWide(m, blocks.Scalar)
	if !wide.Wide() || narrow.Wide() {
		t.Error("Wide() flags wrong")
	}
	if wide.Blocks() != 1 {
		t.Errorf("wide variant split the 600-run into %d blocks", wide.Blocks())
	}
	if narrow.Blocks() != 3 {
		t.Errorf("narrow variant has %d blocks, want 3", narrow.Blocks())
	}
	// Per-block cost: narrow pays 5 index bytes per block, wide pays 8.
	if wide.MatrixBytes() >= narrow.MatrixBytes() {
		t.Errorf("wide bytes %d should beat narrow %d here (fewer blocks)",
			wide.MatrixBytes(), narrow.MatrixBytes())
	}
	if wide.Name() != "1D-VBL-wide" {
		t.Errorf("Name = %q", wide.Name())
	}
}
