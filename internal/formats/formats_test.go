package formats_test

import (
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/csr"
	"blockspmv/internal/formats"
	"blockspmv/internal/testmat"
)

func TestVectorBytes(t *testing.T) {
	if got := formats.VectorBytes(100, 50, 8); got != 1200 {
		t.Errorf("VectorBytes = %d, want 1200", got)
	}
	if got := formats.VectorBytes(100, 50, 4); got != 600 {
		t.Errorf("VectorBytes = %d, want 600", got)
	}
}

func TestWorkingSetBytes(t *testing.T) {
	m := testmat.Random[float64](64, 32, 0.1, 1)
	a := csr.FromCOO(m, blocks.Scalar)
	want := a.MatrixBytes() + int64(64+32)*8
	if got := formats.WorkingSetBytes[float64](a); got != want {
		t.Errorf("WorkingSetBytes = %d, want %d", got, want)
	}
}

func TestCheckDims(t *testing.T) {
	m := testmat.Random[float64](10, 20, 0.2, 2)
	a := csr.FromCOO(m, blocks.Scalar)
	// Correct dims pass silently.
	formats.CheckDims[float64](a, make([]float64, 20), make([]float64, 10))
	for _, tc := range []struct{ xn, yn int }{{19, 10}, {20, 11}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckDims(x=%d, y=%d) did not panic", tc.xn, tc.yn)
				}
			}()
			formats.CheckDims[float64](a, make([]float64, tc.xn), make([]float64, tc.yn))
		}()
	}
}
