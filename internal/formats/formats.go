// Package formats defines the common interface every sparse storage format
// in this library implements, plus the component descriptors the
// performance models consume.
//
// A format instance is an immutable, multiply-ready representation of one
// matrix. Decomposed formats (BCSR-DEC, BCSD-DEC) expose one component per
// submatrix of the decomposition, matching the per-component sums of
// equations (2) and (3) in the paper.
package formats

import (
	"fmt"

	"blockspmv/internal/blocks"
	"blockspmv/internal/floats"
)

// Component describes one submatrix of a format instance for the
// performance models: its block shape and implementation class, the number
// of blocks nb_i, and the bytes of matrix data ws_i streamed from memory.
type Component struct {
	Shape   blocks.Shape
	Impl    blocks.Impl
	Blocks  int64
	WSBytes int64
	// Variant marks components whose kernel family differs from the
	// plain explicit-index layout (e.g. the CSR-DU delta decoder), so
	// model predictions can use the matching profiled block time.
	Variant blocks.Variant
}

// Instance is a multiply-ready sparse matrix in some storage format.
//
// Mul computes y = A*x, overwriting y. MulRange accumulates the product of
// the row range [r0, r1) into y, assuming the caller has zeroed that range;
// r0 and r1 must be multiples of RowAlign() or equal to Rows(). The
// multithreaded executor in internal/parallel builds on MulRange.
//
// Concurrency contract: MulRange must be safe for concurrent calls on
// disjoint aligned row ranges — implementations read only immutable
// matrix state and the shared x, and write y exclusively inside their
// range. The persistent worker pool relies on this: each pinned worker
// zero-fills and accumulates its own y slice (first-touch ownership)
// while the others do the same on theirs, every multiply, with no
// cross-range synchronisation.
type Instance[T floats.Float] interface {
	// Name identifies the format and configuration, e.g. "BCSR(2x3)" or
	// "BCSD-DEC(d4)/simd".
	Name() string

	Rows() int
	Cols() int

	// NNZ is the number of original nonzero elements.
	NNZ() int64

	// StoredScalars is the number of value-array entries including any
	// zero padding. The multithreaded load balancer weights rows by stored
	// scalars, "account[ing] for the extra zero elements used for the
	// padding" (Section V).
	StoredScalars() int64

	// MatrixBytes is the total size of the matrix data structures: value
	// arrays, index arrays and pointers, excluding the x and y vectors.
	MatrixBytes() int64

	// Components lists the decomposition components for the performance
	// models; non-decomposed formats return a single component.
	Components() []Component

	// Mul computes y = A*x. It panics on dimension mismatch.
	Mul(x, y []T)

	// RowAlign is the row granularity of MulRange: range boundaries must
	// be multiples of it (the block height r for BCSR, the segment size b
	// for BCSD, 1 for CSR and 1D-VBL).
	RowAlign() int

	// RowWeights returns per-row stored-scalar counts (including padding),
	// the weights the balanced partitioner splits on.
	RowWeights() []int64

	// MulRange accumulates A[r0:r1) * x into y[r0:r1), which the caller
	// must have zeroed. Boundaries must be RowAlign()-aligned (or Rows()).
	MulRange(x, y []T, r0, r1 int)

	// MulRangeMulti is the multi-RHS form of MulRange: x is a row-major
	// panel of k right-hand sides (x[j*k+l] is element j of RHS l,
	// len(x) = Cols()*k) and y the matching output panel (y[i*k+l],
	// len(y) = Rows()*k); the caller must have zeroed y[r0*k:r1*k).
	// The matrix stream is walked once per block row for all k columns,
	// amortizing the dominant memory traffic, while per panel column the
	// floating-point accumulation order is exactly that of MulRange —
	// MulRangeMulti over a k-wide panel is bit-identical to k MulRange
	// calls. k = 0 is a no-op; alignment and concurrency contracts match
	// MulRange.
	MulRangeMulti(x, y []T, k, r0, r1 int)

	// WithImpl returns an instance over the same storage using the given
	// kernel implementation class; the receiver is unchanged and the
	// underlying arrays are shared. Formats without distinct
	// implementations (VBR, DCSR) return an equivalent instance. The
	// experiment harness uses this to time scalar and simd kernels
	// without converting the matrix twice.
	WithImpl(impl blocks.Impl) Instance[T]
}

// VectorBytes returns the bytes of the input and output vectors for an
// n x m matrix with valSize-byte elements. The models add this to
// MatrixBytes to form the full streaming working set ws.
func VectorBytes(rows, cols, valSize int) int64 {
	return int64(rows+cols) * int64(valSize)
}

// WorkingSetBytes is the full streaming working set of an instance:
// matrix structures plus both vectors.
func WorkingSetBytes[T floats.Float](inst Instance[T]) int64 {
	return inst.MatrixBytes() + VectorBytes(inst.Rows(), inst.Cols(), floats.SizeOf[T]())
}

// DimError is the typed form of a Mul dimension mismatch: the operand
// lengths do not match the matrix shape.
type DimError struct {
	Format     string // the instance's Name()
	Rows, Cols int
	LenX, LenY int
}

// Error implements error.
func (e *DimError) Error() string {
	return fmt.Sprintf("formats: Mul dimension mismatch: %s is %dx%d, x has %d, y has %d",
		e.Format, e.Rows, e.Cols, e.LenX, e.LenY)
}

// CheckDims panics with a *DimError on Mul dimension mismatches; the
// panicking Mul entry points use it directly.
func CheckDims[T floats.Float](inst Instance[T], x, y []T) {
	if err := CheckDimsErr(inst, x, y); err != nil {
		panic(err)
	}
}

// CheckDimsErr returns a typed *DimError when the operand lengths do not
// match the instance shape, nil otherwise. The error-returning multiply
// paths (parallel.Mul.MulVec, the checked public API) use it so shape
// mistakes surface as errors instead of panics.
func CheckDimsErr[T floats.Float](inst Instance[T], x, y []T) error {
	if len(x) != inst.Cols() || len(y) != inst.Rows() {
		return &DimError{Format: inst.Name(), Rows: inst.Rows(), Cols: inst.Cols(), LenX: len(x), LenY: len(y)}
	}
	return nil
}

// PanelError reports a multi-RHS operand set whose vector counts do not
// match: MulVecs needs exactly one output vector per right-hand side.
type PanelError struct {
	Format string // the instance's Name()
	NX, NY int    // number of input and output vectors
}

// Error implements error.
func (e *PanelError) Error() string {
	return fmt.Sprintf("formats: MulVecs panel mismatch: %s got %d right-hand sides but %d outputs",
		e.Format, e.NX, e.NY)
}

// CheckPanelDimsErr validates a multi-RHS operand set: as many outputs
// as inputs (else a *PanelError), and every x[l]/y[l] pair shaped like
// a MulVec operand pair (else the first offending *DimError).
func CheckPanelDimsErr[T floats.Float](inst Instance[T], x, y [][]T) error {
	if len(x) != len(y) {
		return &PanelError{Format: inst.Name(), NX: len(x), NY: len(y)}
	}
	for l := range x {
		if err := CheckDimsErr(inst, x[l], y[l]); err != nil {
			return err
		}
	}
	return nil
}

// PackPanel interleaves k equal-length vectors into the row-major panel
// layout MulRangeMulti consumes: dst[j*k+l] = vecs[l][j]. dst must have
// len(vecs[0])*len(vecs) elements.
func PackPanel[T floats.Float](dst []T, vecs [][]T) {
	k := len(vecs)
	for l, v := range vecs {
		for j, e := range v {
			dst[j*k+l] = e
		}
	}
}

// UnpackPanel is the inverse of PackPanel: vecs[l][i] = src[i*k+l],
// overwriting each destination vector.
func UnpackPanel[T floats.Float](vecs [][]T, src []T) {
	k := len(vecs)
	for l, v := range vecs {
		for i := range v {
			v[i] = src[i*k+l]
		}
	}
}

// MulVecs computes y[l] = A*x[l] for every vector of a multi-RHS
// operand set in one pass over the matrix, overwriting the outputs. It
// packs the vectors into row-major panels, runs MulRangeMulti over the
// full row range, and unpacks the result; each y[l] is bit-identical to
// a Mul call on x[l]. It panics on operand shape mismatches (the typed
// *PanelError / *DimError); the checked public API and parallel
// executor validate first and return errors instead. k = 0 is a no-op.
func MulVecs[T floats.Float](inst Instance[T], x, y [][]T) {
	if err := CheckPanelDimsErr(inst, x, y); err != nil {
		panic(err)
	}
	k := len(x)
	if k == 0 {
		return
	}
	xp := make([]T, inst.Cols()*k)
	yp := make([]T, inst.Rows()*k) // zeroed by make, as MulRangeMulti requires
	PackPanel(xp, x)
	inst.MulRangeMulti(xp, yp, k, 0, inst.Rows())
	UnpackPanel(y, yp)
}
