// Package idx defines the column-index storage widths of the compressed
// format variants. The paper's formats store every column index as a
// 4-byte integer; on bandwidth-bound SpMV those index bytes are pure
// working-set cost (ws in the MEM model t = ws/BW), so matrices narrow
// enough to address with 2- or 1-byte indices can shed a large fraction
// of their matrix stream with no change to the arithmetic.
package idx

// Index constrains the integer types usable as stored column indices.
// int32 is the paper's baseline; uint16 and uint8 are the narrow
// variants selected when the matrix width permits.
type Index interface {
	~uint8 | ~uint16 | ~int32
}

// Bytes reports the storage size of the index type I.
func Bytes[I Index]() int {
	var v I
	switch any(v).(type) {
	case uint8:
		return 1
	case uint16:
		return 2
	default:
		return 4
	}
}

// Of reports the width of the index type I.
func Of[I Index]() Width {
	switch Bytes[I]() {
	case 1:
		return W8
	case 2:
		return W16
	default:
		return W32
	}
}

// Width names an index storage width. The zero value is the paper's
// 4-byte baseline, so existing candidates and serialized artifacts are
// unchanged by the field's introduction.
type Width uint8

const (
	// W32 is the 4-byte baseline of the paper's formats.
	W32 Width = iota
	// W16 stores column indices as uint16 (matrices up to 65536 columns).
	W16
	// W8 stores column indices as uint8 (matrices up to 256 columns).
	W8
)

// Bytes reports the storage size of one index under the width.
func (w Width) Bytes() int {
	switch w {
	case W8:
		return 1
	case W16:
		return 2
	default:
		return 4
	}
}

// Suffix is the name decoration instances and candidates carry for the
// width: "" for the baseline, "/ix16" and "/ix8" for the narrow variants.
func (w Width) Suffix() string {
	switch w {
	case W8:
		return "/ix8"
	case W16:
		return "/ix16"
	default:
		return ""
	}
}

// String names the width for diagnostics.
func (w Width) String() string {
	switch w {
	case W8:
		return "ix8"
	case W16:
		return "ix16"
	default:
		return "ix32"
	}
}

// FitsCols returns the narrowest width able to address every column of a
// matrix with the given number of columns: indices range over
// [0, cols-1], so cols <= 256 fits uint8 and cols <= 65536 fits uint16.
func FitsCols(cols int) Width {
	switch {
	case cols <= 1<<8:
		return W8
	case cols <= 1<<16:
		return W16
	default:
		return W32
	}
}
