package idx

import "testing"

func TestBytes(t *testing.T) {
	if got := Bytes[uint8](); got != 1 {
		t.Errorf("Bytes[uint8] = %d", got)
	}
	if got := Bytes[uint16](); got != 2 {
		t.Errorf("Bytes[uint16] = %d", got)
	}
	if got := Bytes[int32](); got != 4 {
		t.Errorf("Bytes[int32] = %d", got)
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		w      Width
		bytes  int
		suffix string
	}{
		{W32, 4, ""},
		{W16, 2, "/ix16"},
		{W8, 1, "/ix8"},
	}
	for _, c := range cases {
		if c.w.Bytes() != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.w, c.w.Bytes(), c.bytes)
		}
		if c.w.Suffix() != c.suffix {
			t.Errorf("%v.Suffix() = %q, want %q", c.w, c.w.Suffix(), c.suffix)
		}
	}
}

func TestFitsCols(t *testing.T) {
	cases := []struct {
		cols int
		want Width
	}{
		{1, W8}, {255, W8}, {256, W8},
		{257, W16}, {65536, W16},
		{65537, W32}, {1 << 24, W32},
	}
	for _, c := range cases {
		if got := FitsCols(c.cols); got != c.want {
			t.Errorf("FitsCols(%d) = %v, want %v", c.cols, got, c.want)
		}
	}
}
