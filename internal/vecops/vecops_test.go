package vecops_test

import (
	"fmt"
	"math"
	"testing"

	"blockspmv/internal/floats"
	"blockspmv/internal/vecops"
)

const n = 1 << 16 // large enough that the pool keeps up to 8 workers

func pools[T floats.Float](t *testing.T, workers int) *vecops.Pool[T] {
	t.Helper()
	p := vecops.NewPool[T](n, workers)
	t.Cleanup(p.Close)
	return p
}

func TestOpsMatchSerial(t *testing.T) {
	a := floats.RandVector[float64](n, 1)
	b := floats.RandVector[float64](n, 2)
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			p := pools[float64](t, workers)

			wantDot := floats.Dot(a, b)
			if got := p.Dot(a, b); math.Abs(got-wantDot) > 1e-9*math.Abs(wantDot) {
				t.Errorf("Dot = %g, want %g", got, wantDot)
			}
			if got, want := p.Norm2(a), math.Sqrt(floats.Dot(a, a)); math.Abs(got-want) > 1e-9*want {
				t.Errorf("Norm2 = %g, want %g", got, want)
			}

			// Axpy.
			y := append([]float64(nil), b...)
			p.Axpy(0.75, a, y)
			for i := range y {
				if want := b[i] + 0.75*a[i]; y[i] != want {
					t.Fatalf("Axpy[%d] = %g, want %g", i, y[i], want)
				}
			}

			// FusedUpdate: x += α·pv ; r −= α·q.
			pv := floats.RandVector[float64](n, 3)
			q := floats.RandVector[float64](n, 4)
			x := append([]float64(nil), a...)
			r := append([]float64(nil), b...)
			p.FusedUpdate(-1.25, pv, q, x, r)
			for i := range x {
				if want := a[i] + -1.25*pv[i]; x[i] != want {
					t.Fatalf("FusedUpdate x[%d] = %g, want %g", i, x[i], want)
				}
				if want := b[i] - -1.25*q[i]; r[i] != want {
					t.Fatalf("FusedUpdate r[%d] = %g, want %g", i, r[i], want)
				}
			}

			// Xpby: pv = r + β·pv.
			pv2 := append([]float64(nil), pv...)
			p.Xpby(b, 0.5, pv2)
			for i := range pv2 {
				if want := b[i] + 0.5*pv[i]; pv2[i] != want {
					t.Fatalf("Xpby[%d] = %g, want %g", i, pv2[i], want)
				}
			}

			// SubScaled: s = r − α·v.
			s := make([]float64, n)
			p.SubScaled(a, 2.5, b, s)
			for i := range s {
				if want := a[i] - 2.5*b[i]; s[i] != want {
					t.Fatalf("SubScaled[%d] = %g, want %g", i, s[i], want)
				}
			}

			// DirUpdate: pv = r + β·(pv − ω·v).
			pv3 := append([]float64(nil), pv...)
			p.DirUpdate(a, 0.3, 0.7, b, pv3)
			for i := range pv3 {
				if want := a[i] + 0.3*(pv[i]-0.7*b[i]); pv3[i] != want {
					t.Fatalf("DirUpdate[%d] = %g, want %g", i, pv3[i], want)
				}
			}

			// AddScaled2: x += α·pv + ω·s.
			x2 := append([]float64(nil), a...)
			p.AddScaled2(0.2, pv, 0.4, q, x2)
			for i := range x2 {
				if want := a[i] + (0.2*pv[i] + 0.4*q[i]); x2[i] != want {
					t.Fatalf("AddScaled2[%d] = %g, want %g", i, x2[i], want)
				}
			}

			// Hadamard: z = d ⊙ r.
			z := make([]float64, n)
			p.Hadamard(a, b, z)
			for i := range z {
				if want := a[i] * b[i]; z[i] != want {
					t.Fatalf("Hadamard[%d] = %g, want %g", i, z[i], want)
				}
			}
		})
	}
}

func TestDotDeterministicPerWidth(t *testing.T) {
	a := floats.RandVector[float64](n, 5)
	b := floats.RandVector[float64](n, 6)
	p := pools[float64](t, 4)
	first := p.Dot(a, b)
	for i := 0; i < 10; i++ {
		if got := p.Dot(a, b); got != first {
			t.Fatalf("Dot changed between calls: %g vs %g", got, first)
		}
	}
}

func TestSinglePrecision(t *testing.T) {
	a := floats.RandVector[float32](n, 7)
	p := pools[float32](t, 4)
	want := floats.Dot(a, a)
	if got := p.Dot(a, a); math.Abs(got-want) > 1e-6*want {
		t.Errorf("sp Dot = %g, want %g", got, want)
	}
}

func TestWorkerClamp(t *testing.T) {
	// Tiny vectors are not worth a cross-thread dispatch: the pool falls
	// back to fewer (here one) workers.
	p := vecops.NewPool[float64](100, 8)
	defer p.Close()
	if p.Workers() != 1 {
		t.Errorf("Workers() = %d for n=100, want 1", p.Workers())
	}
	a := floats.RandVector[float64](100, 8)
	if got, want := p.Dot(a, a), floats.Dot(a, a); got != want {
		t.Errorf("serial-clamped Dot = %g, want %g", got, want)
	}
}

func TestOperationAfterClosePanics(t *testing.T) {
	p := vecops.NewPool[float64](n, 2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if r := recover(); r == nil {
			t.Error("Dot after Close did not panic")
		} else if msg := fmt.Sprint(r); msg == "" {
			t.Error("empty panic message")
		}
	}()
	a := make([]float64, n)
	p.Dot(a, a)
}

func TestLengthMismatchPanics(t *testing.T) {
	p := vecops.NewPool[float64](n, 2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	p.Dot(make([]float64, n), make([]float64, n-1))
}

func TestZeroAllocs(t *testing.T) {
	a := floats.RandVector[float64](n, 9)
	b := floats.RandVector[float64](n, 10)
	for _, workers := range []int{1, 4} {
		p := vecops.NewPool[float64](n, workers)
		var sink float64
		if allocs := testing.AllocsPerRun(100, func() { sink += p.Dot(a, b) }); allocs != 0 {
			t.Errorf("workers=%d: Dot allocates %v per call, want 0", workers, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() { p.Axpy(1e-9, a, b) }); allocs != 0 {
			t.Errorf("workers=%d: Axpy allocates %v per call, want 0", workers, allocs)
		}
		p.Close()
		_ = sink
	}
}
