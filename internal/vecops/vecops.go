// Package vecops provides the dense-vector kernels of the Krylov solvers
// — dot products, norms, axpy and the fused recurrence updates — over the
// same persistent worker-pool machinery (internal/workpool) as the
// multithreaded SpMV executor. With the SpMV parallelised, Amdahl's law
// moves the bottleneck to the serial vector work of each iteration; a
// Pool lets the whole solver iteration scale with cores.
//
// Every operation dispatches to workers pinned to fixed element ranges
// (the same range every call, keeping per-thread first-touch locality of
// the solver vectors) and performs no per-call allocations. Reductions
// accumulate per-worker partials in float64 on cache-line-padded slots;
// the partial order is fixed by the partition, so results are
// deterministic for a given worker count (but may differ from the serial
// sum in the last bits, as any parallel reduction does).
package vecops

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"blockspmv/internal/floats"
	"blockspmv/internal/workpool"
)

// opCode selects the kernel a dispatch executes. Fixed operand slots
// (four vectors, two scalars) instead of per-call closures keep the
// dispatch allocation-free.
type opCode int

const (
	opNone       opCode = iota
	opDot               // partial = Σ v1[i]·v2[i]
	opAxpy              // v2 += a1·v1
	opFused             // v3 += a1·v1 ; v4 −= a1·v2
	opXpby              // v2 = v1 + a1·v2
	opSubScaled         // v3 = v1 − a1·v2
	opDirUpdate         // v3 = v1 + a1·(v3 − a2·v2)
	opAddScaled2        // v3 += a1·v1 + a2·v2
	opHadamard          // v3 = v1 ⊙ v2
)

// partStride spaces the per-worker reduction slots a cache line apart so
// concurrent partial writes never share a line.
const partStride = 8

// minChunk is the smallest per-worker element count worth a cross-thread
// dispatch; shorter vectors run on fewer workers (possibly one).
const minChunk = 2048

// Pool executes vector kernels over length-n operands on a persistent
// worker team. Like the SpMV executor it is meant for repeated calls
// from a single caller; Close retires the workers (a GC cleanup retires
// them for abandoned pools).
type Pool[T floats.Float] struct {
	pl      *vpool[T]
	cleanup runtime.Cleanup
}

// vpool is the worker-shared state; it must not reference the owning Pool
// (see the equivalent comment in internal/parallel).
type vpool[T floats.Float] struct {
	n      int
	ranges [][2]int
	team   *workpool.Team // nil when the pool runs serially
	part   []float64      // padded reduction slots, one per range

	op             opCode
	a1, a2         float64
	v1, v2, v3, v4 []T
	fail           *workpool.PanicError // first kernel panic on the serial path
	closed         atomic.Bool
}

// NewPool prepares kernels over vectors of length n with up to workers
// threads (including the caller). The effective width is clamped so every
// worker gets at least minChunk elements; workers <= 1 yields a serial
// pool with no goroutines.
func NewPool[T floats.Float](n, workers int) *Pool[T] {
	if n < 0 {
		panic(fmt.Sprintf("vecops: n = %d", n))
	}
	if workers < 1 {
		workers = 1
	}
	if maxParts := n / minChunk; workers > maxParts {
		workers = maxParts
		if workers < 1 {
			workers = 1
		}
	}
	pl := &vpool[T]{
		n:      n,
		ranges: make([][2]int, workers),
		part:   make([]float64, workers*partStride),
	}
	for k := 0; k < workers; k++ {
		pl.ranges[k] = [2]int{k * n / workers, (k + 1) * n / workers}
	}
	if workers > 1 {
		pl.team = workpool.New(workers, pl.runPart)
	}
	p := &Pool[T]{pl: pl}
	p.cleanup = runtime.AddCleanup(p, func(pl *vpool[T]) { pl.close() }, pl)
	return p
}

// Workers reports the effective team width, including the caller.
func (p *Pool[T]) Workers() int { return len(p.pl.ranges) }

// N reports the operand length the pool was built for.
func (p *Pool[T]) N() int { return p.pl.n }

// Close retires the worker goroutines; afterwards any operation panics.
// Close is idempotent.
func (p *Pool[T]) Close() {
	p.cleanup.Stop()
	p.pl.close()
}

func (pl *vpool[T]) close() {
	if pl.closed.Swap(true) {
		return
	}
	if pl.team != nil {
		pl.team.Close()
	}
}

func (pl *vpool[T]) check(vs ...[]T) {
	if pl.closed.Load() {
		panic("vecops: operation on a closed Pool")
	}
	for _, v := range vs {
		if len(v) != pl.n {
			panic(fmt.Sprintf("vecops: operand length %d, pool built for %d", len(v), pl.n))
		}
	}
}

// dispatch hands the prepared operation to the team (or runs it inline)
// and folds the per-worker partials. A panic inside a kernel — on any
// worker or the caller's own part — is captured by the workpool layer and
// re-raised here on the caller's goroutine as a typed error
// (*workpool.PanicError, or one matching workpool.ErrPoisoned on reuse
// after a panic), so it can never kill a worker goroutine or deadlock;
// the solvers recover it into an ordinary error return.
func (pl *vpool[T]) dispatch(op opCode, a1, a2 float64, v1, v2, v3, v4 []T) float64 {
	pl.op, pl.a1, pl.a2 = op, a1, a2
	pl.v1, pl.v2, pl.v3, pl.v4 = v1, v2, v3, v4
	var err error
	if pl.team == nil {
		if pl.fail != nil {
			err = &workpool.PoisonedError{First: pl.fail}
		} else if pe := workpool.Call(0, pl.run0); pe != nil {
			pl.fail = pe
			err = pe
		}
	} else {
		err = pl.team.Run()
	}
	if err != nil {
		pl.v1, pl.v2, pl.v3, pl.v4 = nil, nil, nil, nil
		panic(err)
	}
	var s float64
	for k := range pl.ranges {
		s += pl.part[k*partStride]
	}
	pl.v1, pl.v2, pl.v3, pl.v4 = nil, nil, nil, nil
	return s
}

// run0 adapts runPart(0) to the zero-argument form workpool.Call wants
// without a per-call closure allocation.
func (pl *vpool[T]) run0() { pl.runPart(0) }

// runPart executes the current op on range k. Worker k always owns the
// same element range, preserving first-touch locality across calls.
func (pl *vpool[T]) runPart(k int) {
	r0, r1 := pl.ranges[k][0], pl.ranges[k][1]
	var acc float64
	switch pl.op {
	case opDot:
		a, b := pl.v1[r0:r1], pl.v2[r0:r1]
		for i := range a {
			acc += float64(a[i]) * float64(b[i])
		}
	case opAxpy:
		al := T(pl.a1)
		x, y := pl.v1[r0:r1], pl.v2[r0:r1]
		for i := range x {
			y[i] += al * x[i]
		}
	case opFused:
		al := T(pl.a1)
		pv, q, x, r := pl.v1[r0:r1], pl.v2[r0:r1], pl.v3[r0:r1], pl.v4[r0:r1]
		for i := range pv {
			x[i] += al * pv[i]
			r[i] -= al * q[i]
		}
	case opXpby:
		be := T(pl.a1)
		r, pv := pl.v1[r0:r1], pl.v2[r0:r1]
		for i := range r {
			pv[i] = r[i] + be*pv[i]
		}
	case opSubScaled:
		al := T(pl.a1)
		r, v, s := pl.v1[r0:r1], pl.v2[r0:r1], pl.v3[r0:r1]
		for i := range r {
			s[i] = r[i] - al*v[i]
		}
	case opDirUpdate:
		be, om := T(pl.a1), T(pl.a2)
		r, v, pv := pl.v1[r0:r1], pl.v2[r0:r1], pl.v3[r0:r1]
		for i := range r {
			pv[i] = r[i] + be*(pv[i]-om*v[i])
		}
	case opAddScaled2:
		al, om := T(pl.a1), T(pl.a2)
		pv, s, x := pl.v1[r0:r1], pl.v2[r0:r1], pl.v3[r0:r1]
		for i := range pv {
			x[i] += al*pv[i] + om*s[i]
		}
	case opHadamard:
		d, r, z := pl.v1[r0:r1], pl.v2[r0:r1], pl.v3[r0:r1]
		for i := range d {
			z[i] = d[i] * r[i]
		}
	}
	pl.part[k*partStride] = acc
}

// Dot returns Σ a[i]·b[i], accumulated in float64.
func (p *Pool[T]) Dot(a, b []T) float64 {
	p.pl.check(a, b)
	return p.pl.dispatch(opDot, 0, 0, a, b, nil, nil)
}

// Norm2 returns the Euclidean norm of a.
func (p *Pool[T]) Norm2(a []T) float64 {
	p.pl.check(a)
	return math.Sqrt(p.pl.dispatch(opDot, 0, 0, a, a, nil, nil))
}

// Axpy computes y += alpha·x.
func (p *Pool[T]) Axpy(alpha float64, x, y []T) {
	p.pl.check(x, y)
	p.pl.dispatch(opAxpy, alpha, 0, x, y, nil, nil)
}

// FusedUpdate computes the CG tail update in one pass over four vectors:
// x += alpha·pv and r −= alpha·q.
func (p *Pool[T]) FusedUpdate(alpha float64, pv, q, x, r []T) {
	p.pl.check(pv, q, x, r)
	p.pl.dispatch(opFused, alpha, 0, pv, q, x, r)
}

// Xpby computes pv = r + beta·pv (the CG direction update).
func (p *Pool[T]) Xpby(r []T, beta float64, pv []T) {
	p.pl.check(r, pv)
	p.pl.dispatch(opXpby, beta, 0, r, pv, nil, nil)
}

// SubScaled computes s = r − alpha·v.
func (p *Pool[T]) SubScaled(r []T, alpha float64, v, s []T) {
	p.pl.check(r, v, s)
	p.pl.dispatch(opSubScaled, alpha, 0, r, v, s, nil)
}

// DirUpdate computes pv = r + beta·(pv − omega·v), the BiCGSTAB search
// direction update.
func (p *Pool[T]) DirUpdate(r []T, beta, omega float64, v, pv []T) {
	p.pl.check(r, v, pv)
	p.pl.dispatch(opDirUpdate, beta, omega, r, v, pv, nil)
}

// AddScaled2 computes x += alpha·pv + omega·s, the BiCGSTAB solution
// update.
func (p *Pool[T]) AddScaled2(alpha float64, pv []T, omega float64, s, x []T) {
	p.pl.check(pv, s, x)
	p.pl.dispatch(opAddScaled2, alpha, omega, pv, s, x, nil)
}

// Hadamard computes z = d ⊙ r elementwise, the Jacobi preconditioner
// application.
func (p *Pool[T]) Hadamard(d, r, z []T) {
	p.pl.check(d, r, z)
	p.pl.dispatch(opHadamard, 0, 0, d, r, z, nil)
}
