// Package partition chooses block boundaries for the variable-block
// formats (internal/vbr, internal/vbl) by minimizing the modeled matrix
// stream, the quantity the paper's MEM model says governs SpMV time.
//
// The row/column aggregation follows Ahrens & Boman ("On Optimal
// Partitioning For Sparse Matrices In Variable Block Row Format"): a
// linear-time dynamic program over candidate block boundaries whose
// objective is the exact byte footprint of the partitioned matrix, per
// Langr's accounting ("On Memory Footprints of Partitioned Sparse
// Matrices"). Everything here is construction-free: partitions are priced
// from the sparsity pattern alone, without materializing a format
// instance — VBRStats on a candidate partition returns exactly the
// MatrixBytes/StoredScalars/Blocks the constructed vbr.Matrix would
// report (the conformance suite audits this bit for bit).
//
// This package must not import the format packages (they import it); the
// import direction is the compile-time guarantee that pricing never
// builds a matrix.
package partition

import (
	"fmt"

	"blockspmv/internal/mat"
)

// MaxMerge bounds the dynamic program's merge window: a block row (or
// block column) aggregates at most this many pattern-distinct atoms. The
// window keeps the DP linear in the number of atoms; since every group of
// identical-pattern rows is a single atom, the window limits pattern
// diversity inside a block, not block height.
const MaxMerge = 16

// vbrBlockBytes is the per-block index overhead of the VBR layout: one
// 4-byte bcolInd entry plus one 4-byte valPtr entry.
const vbrBlockBytes = 8

// vbrBlockRowBytes is the per-block-row overhead: one 4-byte rpntr entry
// plus one 4-byte browPtr entry.
const vbrBlockRowBytes = 8

// vbrBlockColBytes is the per-block-column overhead: one 4-byte cpntr
// entry.
const vbrBlockColBytes = 4

// VBRPartition is a candidate two-dimensional partition for the VBR
// format: block-row boundaries Rpntr (len nBlockRows+1, Rpntr[0] = 0,
// Rpntr[last] = rows, non-decreasing) and block-column boundaries Cpntr
// with the same shape over the columns.
type VBRPartition struct {
	Rpntr []int32
	Cpntr []int32
}

// Validate checks the partition against a rows x cols matrix: both
// pointer arrays must be non-empty, start at 0, end at the dimension, and
// be non-decreasing (empty blocks are permitted, matching the degenerate
// partitions the identity heuristic emits for empty matrices).
func (pt VBRPartition) Validate(rows, cols int) error {
	if err := validateBounds("rpntr", pt.Rpntr, rows); err != nil {
		return err
	}
	return validateBounds("cpntr", pt.Cpntr, cols)
}

func validateBounds(name string, b []int32, n int) error {
	if len(b) < 2 {
		return fmt.Errorf("partition: %s has %d entries, want at least 2", name, len(b))
	}
	if b[0] != 0 {
		return fmt.Errorf("partition: %s[0] = %d, want 0", name, b[0])
	}
	if int(b[len(b)-1]) != n {
		return fmt.Errorf("partition: %s ends at %d, want %d", name, b[len(b)-1], n)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			return fmt.Errorf("partition: %s[%d] = %d < %s[%d] = %d (non-monotone)",
				name, i, b[i], name, i-1, b[i-1])
		}
	}
	return nil
}

// Stats is the construction-free price of a partitioned format: exactly
// the Blocks/StoredScalars/MatrixBytes the built instance reports.
type Stats struct {
	// BlockRows and BlockCols are the partition dimensions (zero for the
	// one-dimensional 1D-VBL pricing, which has no column partition).
	BlockRows, BlockCols int
	// Blocks is the number of stored variable-size blocks.
	Blocks int64
	// Stored is the number of stored scalars including zero fill.
	Stored int64
	// Bytes is the exact streamed matrix footprint: values plus every
	// index array of the format's layout.
	Bytes int64
}

// Identity returns the run-detection heuristic partition the original
// vbr.New used: consecutive rows (and columns) with identical sparsity
// patterns are grouped, so every stored block is completely dense and no
// fill is ever introduced.
func Identity(p *mat.Pattern) VBRPartition {
	return VBRPartition{
		Rpntr: boundsByPattern(p),
		Cpntr: boundsByPattern(Transpose(p)),
	}
}

// boundsByPattern returns block boundaries grouping consecutive rows of p
// with identical column patterns.
func boundsByPattern(p *mat.Pattern) []int32 {
	bounds := []int32{0}
	for r := 1; r < p.Rows; r++ {
		if !equalInt32(p.RowCols(r), p.RowCols(r-1)) {
			bounds = append(bounds, int32(r))
		}
	}
	bounds = append(bounds, int32(p.Rows))
	return bounds
}

// Transpose returns the transposed sparsity pattern (CSC view of p).
func Transpose(p *mat.Pattern) *mat.Pattern {
	t := &mat.Pattern{
		Rows:   p.Cols,
		Cols:   p.Rows,
		RowPtr: make([]int32, p.Cols+1),
		ColInd: make([]int32, p.NNZ()),
	}
	for _, c := range p.ColInd {
		t.RowPtr[c+1]++
	}
	for c := 0; c < p.Cols; c++ {
		t.RowPtr[c+1] += t.RowPtr[c]
	}
	cursor := make([]int32, p.Cols)
	copy(cursor, t.RowPtr[:p.Cols])
	for r := 0; r < p.Rows; r++ {
		for _, c := range p.RowCols(r) {
			t.ColInd[cursor[c]] = int32(r)
			cursor[c]++
		}
	}
	return t
}

// colBlockOf maps every column to its block column under cpntr.
func colBlockOf(cpntr []int32, cols int) []int32 {
	colBlock := make([]int32, cols)
	for bj := 0; bj+1 < len(cpntr); bj++ {
		for c := cpntr[bj]; c < cpntr[bj+1]; c++ {
			colBlock[c] = int32(bj)
		}
	}
	return colBlock
}

// VBRStats prices a candidate partition exactly, without constructing the
// format: Stored counts every scalar of the dense blocks the partition
// induces (a block is stored iff any of its positions is nonzero, and
// then stored fully), Blocks counts those blocks, and Bytes is the full
// VBR footprint
//
//	stored*valSize + 4*(len(rpntr)+len(cpntr)+len(browPtr)+len(bcolInd)+len(valPtr)).
//
// It returns an error if the partition does not validate against p.
func VBRStats(p *mat.Pattern, pt VBRPartition, valSize int) (Stats, error) {
	if err := pt.Validate(p.Rows, p.Cols); err != nil {
		return Stats{}, err
	}
	nbr := len(pt.Rpntr) - 1
	nbc := len(pt.Cpntr) - 1
	colBlock := colBlockOf(pt.Cpntr, p.Cols)
	seen := make([]int32, nbc)
	for i := range seen {
		seen[i] = -1
	}
	st := Stats{BlockRows: nbr, BlockCols: nbc}
	for bi := 0; bi < nbr; bi++ {
		var width, dist int64
		for r := pt.Rpntr[bi]; r < pt.Rpntr[bi+1]; r++ {
			prev := int32(-1)
			for _, c := range p.RowCols(int(r)) {
				bj := colBlock[c]
				if bj == prev {
					continue
				}
				prev = bj
				if seen[bj] != int32(bi) {
					seen[bj] = int32(bi)
					dist++
					width += int64(pt.Cpntr[bj+1] - pt.Cpntr[bj])
				}
			}
		}
		h := int64(pt.Rpntr[bi+1] - pt.Rpntr[bi])
		st.Stored += h * width
		st.Blocks += dist
	}
	st.Bytes = st.Stored*int64(valSize) +
		int64(nbr+1)*4 + int64(nbc+1)*4 + // rpntr, cpntr
		int64(nbr+1)*4 + // browPtr
		st.Blocks*4 + (st.Blocks+1)*4 // bcolInd, valPtr
	return st, nil
}

// VBRStreamBytes is VBRStats reduced to the byte objective.
func VBRStreamBytes(p *mat.Pattern, pt VBRPartition, valSize int) (int64, error) {
	st, err := VBRStats(p, pt, valSize)
	return st.Bytes, err
}

// AggregateVBR runs the Ahrens & Boman aggregation: columns first (a
// one-dimensional DP over identical-pattern column atoms with a
// per-row-touch cost), then rows against the chosen column partition
// (exact group costs), each minimizing the modeled stream bytes. The
// result is guaranteed never worse than Identity(p): both the identity
// partition and the row-DP against the identity columns are priced
// exactly alongside the aggregated candidate, and the cheapest wins.
func AggregateVBR(p *mat.Pattern, valSize int) VBRPartition {
	id := Identity(p)
	if p.Rows == 0 || p.Cols == 0 || p.NNZ() == 0 {
		return id
	}
	t := Transpose(p)
	cDP := aggregateCols(p, t, valSize)

	candidates := []VBRPartition{
		id,
		{Rpntr: aggregateRows(p, id.Cpntr, valSize), Cpntr: id.Cpntr},
		{Rpntr: aggregateRows(p, cDP, valSize), Cpntr: cDP},
	}
	best := candidates[0]
	bestBytes := int64(-1)
	for _, cand := range candidates {
		b, err := VBRStreamBytes(p, cand, valSize)
		if err != nil {
			panic("partition: internal candidate failed validation: " + err.Error())
		}
		if bestBytes < 0 || b < bestBytes {
			best, bestBytes = cand, b
		}
	}
	return best
}

// atoms returns the identical-pattern row-group boundaries of p plus, for
// the DP, a guarantee that each boundary interval is non-empty.
func atoms(p *mat.Pattern) []int32 { return boundsByPattern(p) }

// aggregateRows runs the forward DP over identical-pattern row atoms for
// a fixed column partition. The cost of a block row grouping atoms
// [a..b) is exact:
//
//	h * W * valSize  +  D * (bcolInd + valPtr)  +  (rpntr + browPtr)
//
// where h is the group height, D the number of distinct block columns its
// rows touch and W their total width — precisely this group's
// contribution to VBRStats. The partition-independent "+1" array entries
// cancel when comparing partitions, so minimizing the DP sum minimizes
// the exact footprint over all partitions refining the atom boundaries;
// the identity partition (every atom its own block row) is in that space,
// so the result is never worse than the heuristic for this cpntr.
func aggregateRows(p *mat.Pattern, cpntr []int32, valSize int) []int32 {
	at := atoms(p)
	n := len(at) - 1 // number of atoms
	if n <= 1 {
		return at
	}
	nbc := len(cpntr) - 1
	colBlock := colBlockOf(cpntr, p.Cols)
	seen := make([]int32, nbc)
	for i := range seen {
		seen[i] = -1
	}

	const inf = int64(1) << 62
	opt := make([]int64, n+1)
	parent := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		opt[i] = inf
	}
	for a := 0; a < n; a++ {
		if opt[a] == inf {
			continue
		}
		var width, dist int64
		limit := min(a+MaxMerge, n)
		for b := a + 1; b <= limit; b++ {
			// Extend the running block-column union with atom b-1's
			// pattern (all rows of an atom share it; the first suffices).
			prev := int32(-1)
			for _, c := range p.RowCols(int(at[b-1])) {
				bj := colBlock[c]
				if bj == prev {
					continue
				}
				prev = bj
				if seen[bj] != int32(a) {
					seen[bj] = int32(a)
					dist++
					width += int64(cpntr[bj+1] - cpntr[bj])
				}
			}
			h := int64(at[b] - at[a])
			cost := opt[a] + h*width*int64(valSize) + dist*vbrBlockBytes + vbrBlockRowBytes
			if cost < opt[b] {
				opt[b] = cost
				parent[b] = int32(a)
			}
		}
		// Reset the epoch marker namespace for the next start: the marker
		// is the start index a, unique per iteration, so nothing to clear.
	}
	return reconstruct(at, parent, n)
}

// aggregateCols runs the same DP over identical-pattern column atoms of
// the transpose t. Without a fixed row partition the exact block count is
// unknown, so the cost charges each (row, block column) incidence as one
// block — the unit-row-partition upper bound:
//
//	T * (w * valSize + bcolInd + valPtr)  +  cpntr
//
// where T is the number of distinct rows touching the group and w its
// width. The final exact pricing in AggregateVBR keeps this phase honest.
func aggregateCols(p, t *mat.Pattern, valSize int) []int32 {
	at := atoms(t)
	n := len(at) - 1
	if n <= 1 {
		return at
	}
	seen := make([]int32, p.Rows)
	for i := range seen {
		seen[i] = -1
	}

	const inf = int64(1) << 62
	opt := make([]int64, n+1)
	parent := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		opt[i] = inf
	}
	for a := 0; a < n; a++ {
		if opt[a] == inf {
			continue
		}
		var touch int64
		limit := min(a+MaxMerge, n)
		for b := a + 1; b <= limit; b++ {
			for _, r := range t.RowCols(int(at[b-1])) {
				if seen[r] != int32(a) {
					seen[r] = int32(a)
					touch++
				}
			}
			w := int64(at[b] - at[a])
			cost := opt[a] + touch*(w*int64(valSize)+vbrBlockBytes) + vbrBlockColBytes
			if cost < opt[b] {
				opt[b] = cost
				parent[b] = int32(a)
			}
		}
	}
	return reconstruct(at, parent, n)
}

// reconstruct walks the DP parent chain from atom n back to 0 and returns
// the chosen boundaries in ascending order.
func reconstruct(at []int32, parent []int32, n int) []int32 {
	var rev []int32
	for b := n; b > 0; b = int(parent[b]) {
		rev = append(rev, at[b])
	}
	out := make([]int32, 0, len(rev)+1)
	out = append(out, 0)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
