package partition

import (
	"testing"

	"blockspmv/internal/mat"
)

// fuzzPattern decodes a sparsity pattern from fuzz bytes: dims from the
// first bytes, then one bit per cell.
func fuzzPattern(data []byte) *mat.Pattern {
	if len(data) < 2 {
		return &mat.Pattern{RowPtr: []int32{0}}
	}
	rows := int(data[0]%32) + 1
	cols := int(data[1]%32) + 1
	data = data[2:]
	p := &mat.Pattern{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	bit := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			byteIdx := bit / 8
			if byteIdx < len(data) && data[byteIdx]&(1<<(bit%8)) != 0 {
				p.ColInd = append(p.ColInd, int32(c))
			}
			bit++
		}
		p.RowPtr[r+1] = int32(len(p.ColInd))
	}
	return p
}

// fuzzBounds decodes a candidate boundary array over [0, n] from fuzz
// bytes — deliberately unvalidated, so Validate sees hostile input.
func fuzzBounds(data []byte, n int) []int32 {
	b := make([]int32, 0, len(data)+2)
	for _, d := range data {
		b = append(b, int32(int(d)%(n+3)-1)) // may be negative or > n
	}
	b = append(b, 0, int32(n)) // usually, but not always, well-formed ends
	return b
}

// FuzzVBRPartition drives the partition objective with arbitrary
// row/col pointer candidate arrays: Validate must catch every malformed
// partition (VBRStats returns an error, never panics or miscounts), and
// the DP aggregation must always emit monotone, in-range boundaries
// whose priced footprint is never worse than the identity heuristic's.
func FuzzVBRPartition(f *testing.F) {
	f.Add([]byte{8, 8, 0xAB, 0xCD, 0xEF, 0x01}, []byte{2, 5}, []byte{3})
	f.Add([]byte{1, 1, 0xFF}, []byte{}, []byte{})
	f.Add([]byte{16, 4, 0x00, 0x12}, []byte{1, 2, 3, 200}, []byte{9, 9})
	f.Fuzz(func(t *testing.T, patBytes, rowBytes, colBytes []byte) {
		p := fuzzPattern(patBytes)
		pt := VBRPartition{
			Rpntr: fuzzBounds(rowBytes, p.Rows),
			Cpntr: fuzzBounds(colBytes, p.Cols),
		}
		st, err := VBRStats(p, pt, 8)
		if err == nil {
			if st.Stored < int64(p.NNZ()) {
				t.Fatalf("valid partition stored %d < nnz %d", st.Stored, p.NNZ())
			}
			if st.Bytes <= 0 {
				t.Fatalf("valid partition priced %d bytes", st.Bytes)
			}
		}

		for _, valSize := range []int{4, 8} {
			dp := AggregateVBR(p, valSize)
			if err := dp.Validate(p.Rows, p.Cols); err != nil {
				t.Fatalf("AggregateVBR emitted invalid partition: %v", err)
			}
			id := Identity(p)
			if err := id.Validate(p.Rows, p.Cols); err != nil {
				t.Fatalf("Identity emitted invalid partition: %v", err)
			}
			dpBytes, err := VBRStreamBytes(p, dp, valSize)
			if err != nil {
				t.Fatal(err)
			}
			idBytes, err := VBRStreamBytes(p, id, valSize)
			if err != nil {
				t.Fatal(err)
			}
			if dpBytes > idBytes {
				t.Fatalf("valSize %d: DP priced %d bytes > identity %d", valSize, dpBytes, idBytes)
			}
		}
	})
}

// FuzzVBLRowBlocks checks the per-row DP on arbitrary sorted column
// lists: emitted blocks must be in order, non-overlapping, within the
// one-byte span limit, cover exactly the input columns, and never price
// worse than run detection.
func FuzzVBLRowBlocks(f *testing.F) {
	f.Add([]byte{0, 1, 2, 10, 11, 200}, 8)
	f.Add([]byte{5}, 4)
	f.Add([]byte{}, 8)
	f.Fuzz(func(t *testing.T, colBytes []byte, valSize int) {
		if valSize != 4 && valSize != 8 {
			valSize = 8
		}
		// Strictly increasing columns from arbitrary gaps.
		cols := make([]int32, 0, len(colBytes))
		c := int32(0)
		for _, g := range colBytes {
			c += int32(g%200) + 1
			cols = append(cols, c)
		}
		var got []int32
		var prevEnd int32 = -1
		var bytes int64
		VBLRowBlocks(cols, valSize, func(start, span int32) {
			if span <= 0 || span > VBLMaxSpan {
				t.Fatalf("block span %d out of range", span)
			}
			if start <= prevEnd {
				t.Fatalf("block at %d overlaps or precedes previous end %d", start, prevEnd)
			}
			prevEnd = start + span - 1
			for i := start; i < start+span; i++ {
				got = append(got, i)
			}
			bytes += int64(span)*int64(valSize) + 5
		})
		// Every input column must be covered.
		gi := 0
		for _, want := range cols {
			for gi < len(got) && got[gi] < want {
				gi++
			}
			if gi >= len(got) || got[gi] != want {
				t.Fatalf("column %d not covered by emitted blocks", want)
			}
		}
		// Never worse than run detection.
		var runBytes int64
		for i := 0; i < len(cols); {
			j := i + 1
			for j < len(cols) && cols[j] == cols[j-1]+1 {
				j++
			}
			run := j - i
			nBlocks := (run + VBLMaxSpan - 1) / VBLMaxSpan
			runBytes += int64(run)*int64(valSize) + int64(nBlocks)*5
			i = j
		}
		if bytes > runBytes {
			t.Fatalf("DP priced %d bytes > runs %d", bytes, runBytes)
		}
	})
}
