package partition

import "blockspmv/internal/mat"

// VBLMaxSpan is the largest block span the narrow 1D-VBL layout can
// represent: block sizes are stored in one byte (vbl.MaxBlockLen; the two
// constants are asserted equal in the conformance suite, since this
// package must not import the format).
const VBLMaxSpan = 255

// vblBlockBytes is the per-block index overhead of narrow 1D-VBL: a
// 4-byte starting column plus a 1-byte size.
const vblBlockBytes = 5

// VBLRowBlocks partitions one row's sorted column list into 1D-VBL blocks
// minimizing the row's stream bytes, and yields each block in column
// order as (start, span). A block spanning [start, start+span) stores
// span scalars (zero fill where the row has no entry) plus vblBlockBytes
// of indices, so merging two runs across a gap g trades g*valSize value
// bytes against vblBlockBytes of saved indices — profitable only for
// small scalars (float32, g = 1). The dynamic program runs over the
// maximal runs (pre-split at VBLMaxSpan), which include the run-detection
// solution, so the result is never worse than the heuristic.
func VBLRowBlocks(cols []int32, valSize int, yield func(start int32, span int32)) {
	if len(cols) == 0 {
		return
	}
	// Atom boundaries: maximal consecutive runs, split at VBLMaxSpan.
	type atom struct{ s, e int32 } // covers columns [s, e)
	var ats []atom
	for i := 0; i < len(cols); {
		j := i + 1
		for j < len(cols) && cols[j] == cols[j-1]+1 {
			j++
		}
		for off := i; off < j; off += VBLMaxSpan {
			n := min(j-off, VBLMaxSpan)
			ats = append(ats, atom{s: cols[off], e: cols[off] + int32(n)})
		}
		i = j
	}
	n := len(ats)
	const inf = int64(1) << 62
	opt := make([]int64, n+1)
	parent := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		opt[i] = inf
	}
	for j := 1; j <= n; j++ {
		// A block may cover atoms [i..j) as long as its span fits a byte.
		for i := j - 1; i >= 0; i-- {
			span := int64(ats[j-1].e - ats[i].s)
			if span > VBLMaxSpan {
				break
			}
			cost := opt[i] + span*int64(valSize) + vblBlockBytes
			if cost < opt[j] {
				opt[j] = cost
				parent[j] = int32(i)
			}
		}
	}
	// Reconstruct and emit left to right.
	var rev []int32
	for j := int32(n); j > 0; j = parent[j] {
		rev = append(rev, j)
	}
	start := int32(0)
	for i := len(rev) - 1; i >= 0; i-- {
		j := rev[i]
		yield(ats[start].s, ats[j-1].e-ats[start].s)
		start = j
	}
}

// VBLStats prices the narrow 1D-VBL layout of p without constructing it:
// with dp = false the run-detection heuristic's blocks, with dp = true
// the per-row DP of VBLRowBlocks. Bytes covers every array of the built
// instance — val, the two (rows+1)-entry 4-byte pointer arrays (rowPtr
// and the rowBlk seed index) and vblBlockBytes per block — matching
// vbl.Matrix.MatrixBytes exactly.
func VBLStats(p *mat.Pattern, valSize int, dp bool) Stats {
	var st Stats
	for r := 0; r < p.Rows; r++ {
		cols := p.RowCols(r)
		if dp {
			VBLRowBlocks(cols, valSize, func(start, span int32) {
				st.Blocks++
				st.Stored += int64(span)
			})
			continue
		}
		for i := 0; i < len(cols); {
			j := i + 1
			for j < len(cols) && cols[j] == cols[j-1]+1 {
				j++
			}
			run := j - i
			st.Blocks += int64((run + VBLMaxSpan - 1) / VBLMaxSpan)
			st.Stored += int64(run)
			i = j
		}
	}
	st.Bytes = st.Stored*int64(valSize) + int64(p.Rows+1)*8 + st.Blocks*vblBlockBytes
	return st
}
