package partition_test

import (
	"fmt"
	"math/rand"
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/floats"
	"blockspmv/internal/mat"
	"blockspmv/internal/partition"
	"blockspmv/internal/testmat"
	"blockspmv/internal/vbl"
	"blockspmv/internal/vbr"
)

// corpus returns the shared edge-case matrices plus the degenerate shapes
// the property tests must survive: 0x0, zero-nnz, single row/column.
func corpus[T floats.Float]() map[string]*mat.COO[T] {
	ms := testmat.Corpus[T]()
	zz := mat.New[T](0, 0)
	zz.Finalize()
	ms["zero"] = zz
	zr := mat.New[T](0, 7)
	zr.Finalize()
	ms["zerorows"] = zr
	zc := mat.New[T](7, 0)
	zc.Finalize()
	ms["zerocols"] = zc
	ms["shared"] = SharedSparsity[T](40, 200, 5, 6, 0.05, 42)
	return ms
}

// SharedSparsity builds a matrix of row groups with near-identical
// scattered patterns: groups rows tall, each group drawing cells columns
// at scattered positions, with a perturb fraction of entries dropped per
// row so run detection fragments while the DP can still merge.
func SharedSparsity[T floats.Float](rows, cols, group, cells int, perturb float64, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](rows, cols)
	for r0 := 0; r0 < rows; r0 += group {
		base := make([]int32, 0, cells)
		used := map[int32]bool{}
		for len(base) < cells {
			c := int32(rng.Intn(cols))
			if !used[c] {
				used[c] = true
				base = append(base, c)
			}
		}
		for r := r0; r < min(r0+group, rows); r++ {
			for _, c := range base {
				if rng.Float64() < perturb {
					continue
				}
				m.Add(int32(r), c, T(rng.Float64()+0.5))
			}
		}
	}
	m.Finalize()
	return m
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		pt   partition.VBRPartition
	}{
		{"empty rpntr", partition.VBRPartition{Rpntr: nil, Cpntr: []int32{0, 4}}},
		{"bad start", partition.VBRPartition{Rpntr: []int32{1, 8}, Cpntr: []int32{0, 4}}},
		{"bad end", partition.VBRPartition{Rpntr: []int32{0, 7}, Cpntr: []int32{0, 4}}},
		{"non-monotone", partition.VBRPartition{Rpntr: []int32{0, 5, 3, 8}, Cpntr: []int32{0, 4}}},
		{"bad cpntr", partition.VBRPartition{Rpntr: []int32{0, 8}, Cpntr: []int32{0, 9}}},
	}
	for _, tc := range cases {
		if err := tc.pt.Validate(8, 4); err == nil {
			t.Errorf("%s: Validate accepted invalid partition", tc.name)
		}
	}
	ok := partition.VBRPartition{Rpntr: []int32{0, 3, 3, 8}, Cpntr: []int32{0, 4}}
	if err := ok.Validate(8, 4); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}

// TestVBRStatsMatchesConstruction is the golden audit of the acceptance
// criteria: the construction-free pricing of a partition must equal the
// built instance's MatrixBytes, StoredScalars and Blocks exactly, for
// both the identity heuristic and the DP partition, at both precisions.
func TestVBRStatsMatchesConstruction(t *testing.T) {
	t.Run("float64", func(t *testing.T) { testVBRStatsMatch[float64](t) })
	t.Run("float32", func(t *testing.T) { testVBRStatsMatch[float32](t) })
}

func testVBRStatsMatch[T floats.Float](t *testing.T) {
	valSize := floats.SizeOf[T]()
	for name, m := range corpus[T]() {
		p := mat.PatternOf(m)
		for _, dp := range []bool{false, true} {
			var pt partition.VBRPartition
			var inst *vbr.Matrix[T]
			if dp {
				pt = partition.AggregateVBR(p, valSize)
				inst = vbr.NewDP(m, blocks.Scalar)
			} else {
				pt = partition.Identity(p)
				inst = vbr.New(m, blocks.Scalar)
			}
			st, err := partition.VBRStats(p, pt, valSize)
			if err != nil {
				t.Fatalf("%s dp=%v: VBRStats: %v", name, dp, err)
			}
			if st.Bytes != inst.MatrixBytes() {
				t.Errorf("%s dp=%v: priced %d bytes, built %d", name, dp, st.Bytes, inst.MatrixBytes())
			}
			if st.Stored != inst.StoredScalars() {
				t.Errorf("%s dp=%v: priced %d stored, built %d", name, dp, st.Stored, inst.StoredScalars())
			}
			if st.Blocks != inst.Blocks() {
				t.Errorf("%s dp=%v: priced %d blocks, built %d", name, dp, st.Blocks, inst.Blocks())
			}
			if st.BlockRows != inst.BlockRows() || st.BlockCols != inst.BlockCols() {
				t.Errorf("%s dp=%v: priced %dx%d partition, built %dx%d",
					name, dp, st.BlockRows, st.BlockCols, inst.BlockRows(), inst.BlockCols())
			}
		}
	}
}

// TestVBLStatsMatchesConstruction audits the 1D-VBL pricing the same way,
// including the rowBlk bytes the PR-2 carve-out used to exclude.
func TestVBLStatsMatchesConstruction(t *testing.T) {
	t.Run("float64", func(t *testing.T) { testVBLStatsMatch[float64](t) })
	t.Run("float32", func(t *testing.T) { testVBLStatsMatch[float32](t) })
}

func testVBLStatsMatch[T floats.Float](t *testing.T) {
	valSize := floats.SizeOf[T]()
	for name, m := range corpus[T]() {
		p := mat.PatternOf(m)
		for _, dp := range []bool{false, true} {
			var inst *vbl.Matrix[T]
			if dp {
				inst = vbl.NewDP(m, blocks.Scalar)
			} else {
				inst = vbl.New(m, blocks.Scalar)
			}
			st := partition.VBLStats(p, valSize, dp)
			if st.Bytes != inst.MatrixBytes() {
				t.Errorf("%s dp=%v: priced %d bytes, built %d", name, dp, st.Bytes, inst.MatrixBytes())
			}
			if st.Stored != inst.StoredScalars() {
				t.Errorf("%s dp=%v: priced %d stored, built %d", name, dp, st.Stored, inst.StoredScalars())
			}
			if st.Blocks != inst.Blocks() {
				t.Errorf("%s dp=%v: priced %d blocks, built %d", name, dp, st.Blocks, inst.Blocks())
			}
		}
	}
}

// TestDPNeverWorse is the satellite property test: the DP partition's
// priced stream bytes are never worse than the run-detection heuristic's,
// for VBR and VBL, at both element sizes, over the archetype corpus plus
// randomized matrices.
func TestDPNeverWorse(t *testing.T) {
	t.Run("float64", func(t *testing.T) { testDPNeverWorse[float64](t) })
	t.Run("float32", func(t *testing.T) { testDPNeverWorse[float32](t) })
}

func testDPNeverWorse[T floats.Float](t *testing.T) {
	valSize := floats.SizeOf[T]()
	ms := corpus[T]()
	for seed := int64(100); seed < 110; seed++ {
		ms[fmt.Sprintf("rand%d", seed)] = testmat.Random[T](31, 47, 0.07, seed)
		ms[fmt.Sprintf("blocky%d", seed)] = testmat.Blocky[T](48, 48, 3, 3, 20, 15, seed)
	}
	for name, m := range ms {
		p := mat.PatternOf(m)
		idBytes, err := partition.VBRStreamBytes(p, partition.Identity(p), valSize)
		if err != nil {
			t.Fatalf("%s: identity: %v", name, err)
		}
		dpBytes, err := partition.VBRStreamBytes(p, partition.AggregateVBR(p, valSize), valSize)
		if err != nil {
			t.Fatalf("%s: dp: %v", name, err)
		}
		if dpBytes > idBytes {
			t.Errorf("%s: VBR DP priced %d bytes > heuristic %d", name, dpBytes, idBytes)
		}
		runs := partition.VBLStats(p, valSize, false)
		dp := partition.VBLStats(p, valSize, true)
		if dp.Bytes > runs.Bytes {
			t.Errorf("%s: VBL DP priced %d bytes > runs %d", name, dp.Bytes, runs.Bytes)
		}
	}
}

// TestDPImprovesSharedSparsity pins the headline behavior: on a matrix of
// near-identical row groups the DP partition must strictly beat run
// detection (which fragments into single-row block rows).
func TestDPImprovesSharedSparsity(t *testing.T) {
	m := SharedSparsity[float64](60, 300, 6, 8, 0.04, 7)
	p := mat.PatternOf(m)
	idBytes, _ := partition.VBRStreamBytes(p, partition.Identity(p), 8)
	dpBytes, _ := partition.VBRStreamBytes(p, partition.AggregateVBR(p, 8), 8)
	if dpBytes >= idBytes {
		t.Fatalf("DP priced %d bytes, heuristic %d: expected strict improvement", dpBytes, idBytes)
	}
}

// TestDPMulMatchesHeuristic checks the DP-built formats compute the same
// product as their run-detection counterparts on every corpus matrix.
func TestDPMulMatchesHeuristic(t *testing.T) {
	for name, m := range corpus[float64]() {
		x := floats.RandVector[float64](m.Cols(), 3)
		want := make([]float64, m.Rows())
		vbr.New(m, blocks.Scalar).Mul(x, want)
		for _, inst := range []interface {
			Mul(x, y []float64)
		}{vbr.NewDP(m, blocks.Scalar), vbl.NewDP(m, blocks.Scalar)} {
			got := make([]float64, m.Rows())
			inst.Mul(x, got)
			for i := range got {
				if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: product mismatch at row %d: %g vs %g", name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestVBLMaxSpanMatchesFormat pins the duplicated constant: the partition
// package may not import the format, so the shared limit is asserted here.
func TestVBLMaxSpanMatchesFormat(t *testing.T) {
	if partition.VBLMaxSpan != vbl.MaxBlockLen {
		t.Fatalf("partition.VBLMaxSpan = %d, vbl.MaxBlockLen = %d", partition.VBLMaxSpan, vbl.MaxBlockLen)
	}
}

// TestNewPartitionedArbitrary drives NewPartitioned with a deliberately
// poor but valid partition and checks pricing still matches construction.
func TestNewPartitionedArbitrary(t *testing.T) {
	m := testmat.Random[float64](20, 30, 0.1, 9)
	p := mat.PatternOf(m)
	pt := partition.VBRPartition{
		Rpntr: []int32{0, 7, 7, 20},
		Cpntr: []int32{0, 1, 16, 30},
	}
	inst, err := vbr.NewPartitioned(m, pt, blocks.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	st, err := partition.VBRStats(p, pt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != inst.MatrixBytes() || st.Stored != inst.StoredScalars() || st.Blocks != inst.Blocks() {
		t.Fatalf("pricing (%d bytes, %d stored, %d blocks) != construction (%d, %d, %d)",
			st.Bytes, st.Stored, st.Blocks, inst.MatrixBytes(), inst.StoredScalars(), inst.Blocks())
	}
	if _, err := vbr.NewPartitioned(m, partition.VBRPartition{Rpntr: []int32{0, 5}, Cpntr: []int32{0, 30}}, blocks.Scalar); err == nil {
		t.Fatal("NewPartitioned accepted a partition not covering the rows")
	}
	x := floats.RandVector[float64](m.Cols(), 4)
	want := make([]float64, m.Rows())
	got := make([]float64, m.Rows())
	vbr.New(m, blocks.Scalar).Mul(x, want)
	inst.Mul(x, got)
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("arbitrary partition product mismatch at row %d", i)
		}
	}
}
