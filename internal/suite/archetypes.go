// Package suite provides the 30-matrix evaluation suite of the paper
// (Table I) as deterministic synthetic generators.
//
// The paper draws its matrices from Tim Davis' collection; this repository
// cannot ship those, so each matrix is replaced by a generator producing
// the same *structural archetype* at a configurable scale: the same domain
// category (dense, random, circuit, graph, linear programming, 2D/3D
// geometry), a comparable average row length, and — crucially for the
// blocked formats — the same kind of local structure (dense node blocks
// for FEM problems, full diagonals for finite differences, power-law rows
// for graphs, and so on). A Matrix Market reader in internal/mat lets real
// collection matrices replace these generators in every experiment.
package suite

import (
	"math"
	"math/rand"

	"blockspmv/internal/floats"
	"blockspmv/internal/mat"
)

// val returns a well-conditioned nonzero value.
func val[T floats.Float](rng *rand.Rand) T {
	return T(rng.Float64()*1.9 + 0.1)
}

// genDense generates a fully dense n x n matrix.
func genDense[T floats.Float](n int, _ int64) *mat.COO[T] {
	return mat.Dense[T](n, n)
}

// genUniformRandom generates a matrix with ~avg uniformly placed nonzeros
// per row, the "random" special matrix of the suite: no exploitable
// structure at all.
func genUniformRandom[T floats.Float](rows, cols, avg int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](rows, cols)
	for r := 0; r < rows; r++ {
		n := avg/2 + rng.Intn(avg+1)
		for k := 0; k < n; k++ {
			m.Add(int32(r), int32(rng.Intn(cols)), val[T](rng))
		}
	}
	m.Finalize()
	return m
}

// genGrid2D generates the matrix of a 5-point (or 9-point) stencil on an
// nx x ny grid: the classic 2D-geometry problem with full sub/super
// diagonals but no dense rectangular blocks.
func genGrid2D[T floats.Float](nx, ny int, ninePoint bool, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	m := mat.New[T](n, n)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			r := int32(j*nx + i)
			add := func(di, dj int) {
				ii, jj := i+di, j+dj
				if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
					return
				}
				m.Add(r, int32(jj*nx+ii), val[T](rng))
			}
			add(0, 0)
			add(-1, 0)
			add(1, 0)
			add(0, -1)
			add(0, 1)
			if ninePoint {
				add(-1, -1)
				add(1, -1)
				add(-1, 1)
				add(1, 1)
			}
		}
	}
	m.Finalize()
	return m
}

// genGrid3D generates the 7-point stencil on an nx x ny x nz grid: full
// diagonals at offsets {0, ±1, ±nx, ±nx*ny}, the friendliest case for
// BCSD (the paper's fdiff matrix, where BCSD wins).
func genGrid3D[T floats.Float](nx, ny, nz int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	m := mat.New[T](n, n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				r := int32((k*ny+j)*nx + i)
				add := func(di, dj, dk int) {
					ii, jj, kk := i+di, j+dj, k+dk
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
						return
					}
					m.Add(r, int32((kk*ny+jj)*nx+ii), val[T](rng))
				}
				add(0, 0, 0)
				add(-1, 0, 0)
				add(1, 0, 0)
				add(0, -1, 0)
				add(0, 1, 0)
				add(0, 0, -1)
				add(0, 0, 1)
			}
		}
	}
	m.Finalize()
	return m
}

// genFEM generates a finite-element-style matrix: nodes with dof degrees
// of freedom each, connected in a quasi-planar mesh (ring of neighbours
// plus short random links); every node adjacency becomes a dense dof x dof
// block aligned at dof boundaries. This is the archetype of the structural
// matrices (#20-#27 and #16) where BCSR shines.
func genFEM[T floats.Float](nodes, dof, deg int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	n := nodes * dof
	m := mat.New[T](n, n)
	addBlock := func(a, b int) {
		for i := 0; i < dof; i++ {
			for j := 0; j < dof; j++ {
				m.Add(int32(a*dof+i), int32(b*dof+j), val[T](rng))
			}
		}
	}
	for u := 0; u < nodes; u++ {
		addBlock(u, u)
		// Near neighbours: mesh locality.
		for d := 1; d <= deg/2; d++ {
			v := u + d
			if v < nodes {
				addBlock(u, v)
				addBlock(v, u)
			}
		}
		// A sprinkle of longer-range couplings.
		if deg > 2 && rng.Float64() < 0.3 {
			span := 2 + rng.Intn(nodes/50+2)
			if v := u + span; v < nodes {
				addBlock(u, v)
				addBlock(v, u)
			}
		}
	}
	m.Finalize()
	return m
}

// genCircuit generates a circuit-simulation archetype: unit diagonal, a
// few scattered off-diagonals per row, and a handful of dense rows and
// columns (supply rails / ground nets). Irregular, no exploitable blocks:
// CSR territory.
func genCircuit[T floats.Float](n, avg int, hubs int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](n, n)
	for r := 0; r < n; r++ {
		m.Add(int32(r), int32(r), val[T](rng))
		k := rng.Intn(2*avg - 1) // avg-1 extra entries on average
		for e := 0; e < k; e++ {
			// Mostly local couplings with occasional far links.
			var c int
			if rng.Float64() < 0.8 {
				c = r + rng.Intn(201) - 100
			} else {
				c = rng.Intn(n)
			}
			if c < 0 || c >= n {
				continue
			}
			m.Add(int32(r), int32(c), val[T](rng))
		}
	}
	for h := 0; h < hubs; h++ {
		hub := rng.Intn(n)
		stride := 1 + rng.Intn(8)
		for c := rng.Intn(stride); c < n; c += stride {
			m.Add(int32(hub), int32(c), val[T](rng))
			m.Add(int32(c), int32(hub), val[T](rng))
		}
	}
	m.Finalize()
	return m
}

// genPowerLaw generates a scale-free graph adjacency archetype (web /
// wikipedia / cage): row degrees follow a heavy-tailed distribution and
// targets are Zipf-skewed towards low column indices. Highly irregular
// input-vector access: the latency-bound case of Section V.B.
func genPowerLaw[T floats.Float](n, avg int, alpha float64, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, alpha, 1, uint64(n-1))
	m := mat.New[T](n, n)
	for r := 0; r < n; r++ {
		// Heavy-tailed out-degree: most rows short, some huge.
		deg := 1 + int(float64(avg)*math.Exp(rng.NormFloat64()*0.9-0.4))
		if deg > 50*avg {
			deg = 50 * avg
		}
		for e := 0; e < deg; e++ {
			c := int(zipf.Uint64())
			// Scatter hub targets across the index space deterministically
			// so that popular columns are not all adjacent.
			c = (c*2654435761 + r) % n
			if c < 0 {
				c += n
			}
			m.Add(int32(r), int32(c), val[T](rng))
		}
	}
	m.Finalize()
	return m
}

// PowerLaw exposes the scale-free graph archetype to standalone tooling
// (cmd/matgen) and to tests that need a scatter-dominated matrix without
// going through the suite runner: n x n with heavy-tailed row degrees
// (lognormal around avg) and Zipf(alpha)-skewed scattered targets.
func PowerLaw[T floats.Float](n, avg int, alpha float64, seed int64) *mat.COO[T] {
	return genPowerLaw[T](n, avg, alpha, seed)
}

// genLP generates a linear-programming constraint-matrix archetype:
// rectangular, with each row's entries clustered into a few contiguous
// column bands (the 1D-VBL-friendly horizontal-run structure), plus
// occasional very long rows.
func genLP[T floats.Float](rows, cols, avg int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](rows, cols)
	for r := 0; r < rows; r++ {
		bands := 1 + rng.Intn(3)
		remaining := avg/2 + rng.Intn(avg+1)
		if rng.Float64() < 0.01 {
			remaining *= 20 // occasional dense constraint
		}
		for b := 0; b < bands && remaining > 0; b++ {
			runLen := 1 + rng.Intn(2*remaining/bands+1)
			if runLen > remaining {
				runLen = remaining
			}
			start := rng.Intn(cols)
			for k := 0; k < runLen && start+k < cols; k++ {
				m.Add(int32(r), int32(start+k), val[T](rng))
			}
			remaining -= runLen
		}
	}
	m.Finalize()
	return m
}

// LP exposes the linear-programming constraint archetype to standalone
// tooling (cmd/matgen) and tests: rows x cols with each row's entries
// clustered into a few contiguous column bands around avg nonzeros.
func LP[T floats.Float](rows, cols, avg int, seed int64) *mat.COO[T] {
	return genLP[T](rows, cols, avg, seed)
}

// genDenseRows generates a matrix whose rows are long contiguous dense
// segments (the TSOPF / nd24k archetype: hundreds of nonzeros per row in
// runs). Every blocked format does well here; wide 1 x c blocks and
// 1D-VBL do best.
func genDenseRows[T floats.Float](n, rowLen int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](n, n)
	for r := 0; r < n; r++ {
		segs := 1 + rng.Intn(3)
		per := rowLen / segs
		for s := 0; s < segs; s++ {
			start := rng.Intn(max(1, n-per))
			// Align segment starts so rows share column ranges (vertical
			// reuse, like the power-flow Jacobians they model).
			start = start / 16 * 16
			for k := 0; k < per && start+k < n; k++ {
				m.Add(int32(r), int32(start+k), val[T](rng))
			}
		}
	}
	m.Finalize()
	return m
}

// genSaddle generates a KKT / saddle-point archetype [A B; B' 0]: a
// stencil block coupled to a rectangular block, with structurally zero
// lower-right part. Mixed structure, hard for any single blocking.
func genSaddle[T floats.Float](n1, n2, avg int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	n := n1 + n2
	m := mat.New[T](n, n)
	// A: tridiagonal-ish on the first n1 variables.
	for r := 0; r < n1; r++ {
		m.Add(int32(r), int32(r), val[T](rng))
		if r+1 < n1 {
			m.Add(int32(r), int32(r+1), val[T](rng))
			m.Add(int32(r+1), int32(r), val[T](rng))
		}
	}
	// B: each constraint touches a few variables.
	for r := 0; r < n2; r++ {
		k := 1 + rng.Intn(2*avg)
		for e := 0; e < k; e++ {
			c := rng.Intn(n1)
			m.Add(int32(n1+r), int32(c), val[T](rng))
			m.Add(int32(c), int32(n1+r), val[T](rng))
		}
	}
	m.Finalize()
	return m
}

// genThermal generates an unstructured 2D/3D diffusion archetype
// (thermal2/stomach): short rows, mesh locality with randomized
// neighbour offsets so no full diagonals or dense blocks form. The
// latency-sensitive end of the geometry category.
func genThermal[T floats.Float](n, avg int, spread int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](n, n)
	for r := 0; r < n; r++ {
		m.Add(int32(r), int32(r), val[T](rng))
		k := avg - 1 + rng.Intn(3)
		for e := 0; e < k; e++ {
			c := r + rng.Intn(2*spread+1) - spread
			if c < 0 || c >= n {
				continue
			}
			m.Add(int32(r), int32(c), val[T](rng))
		}
	}
	m.Finalize()
	return m
}

// genChemistry generates a quantum-chemistry archetype (Ga41As41H72):
// clusters of orbitals produce moderately dense row blocks with ragged
// edges plus long-range exchange terms.
func genChemistry[T floats.Float](n, cluster, avg int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](n, n)
	for r := 0; r < n; r++ {
		base := r / cluster * cluster
		// Dense coupling within the cluster, ragged.
		for c := base; c < base+cluster && c < n; c++ {
			if rng.Float64() < 0.7 {
				m.Add(int32(r), int32(c), val[T](rng))
			}
		}
		// Exchange terms with a few other clusters.
		for e := 0; e < avg/cluster+1; e++ {
			other := rng.Intn(n/cluster) * cluster
			span := 1 + rng.Intn(cluster)
			for k := 0; k < span && other+k < n; k++ {
				if rng.Float64() < 0.5 {
					m.Add(int32(r), int32(other+k), val[T](rng))
				}
			}
		}
	}
	m.Finalize()
	return m
}

// genBandedBlocks generates the "largebasis" archetype: a banded matrix
// whose band is composed of aligned dense tiles of size tile, giving
// near-perfect fixed-size blocking at one specific shape.
func genBandedBlocks[T floats.Float](n, tile, bandTiles int, seed int64) *mat.COO[T] {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New[T](n, n)
	nTiles := n / tile
	for bt := 0; bt < nTiles; bt++ {
		for o := 0; o < bandTiles; o++ {
			ct := bt + o - bandTiles/2
			if ct < 0 || ct >= nTiles {
				continue
			}
			if o != bandTiles/2 && rng.Float64() < 0.25 {
				continue // occasional missing tile keeps it sparse
			}
			for i := 0; i < tile; i++ {
				for j := 0; j < tile; j++ {
					m.Add(int32(bt*tile+i), int32(ct*tile+j), val[T](rng))
				}
			}
		}
	}
	m.Finalize()
	return m
}
