package suite

import (
	"fmt"
	"math"

	"blockspmv/internal/floats"
	"blockspmv/internal/mat"
)

// Scale selects how large the generated matrices are relative to the
// paper's suite (Table I).
type Scale int

const (
	// Tiny is ~1/128 of the paper's linear size: fast enough for unit
	// tests and smoke benchmarks. Working sets fit in cache, so absolute
	// timings are not representative.
	Tiny Scale = iota
	// Small is ~1/16 of the paper's linear size: the default for the
	// experiment harness. Most working sets exceed typical last-level
	// caches while keeping a full 30-matrix sweep tractable.
	Small
	// Paper is ~1/2 of the paper's linear size (a full-size cage15 or
	// wb-edu would dominate the whole sweep; the paper's >25 MiB
	// working-set criterion is already met at this scale). Opt-in.
	Paper
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a scale name to a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("suite: unknown scale %q (want tiny, small or paper)", name)
}

func (s Scale) divisor() float64 {
	switch s {
	case Tiny:
		return 128
	case Small:
		return 16
	default:
		return 2
	}
}

// scaled shrinks a paper-scale count by the scale divisor with a floor.
func scaled(paperCount int, sc Scale) int {
	n := int(float64(paperCount) / sc.divisor())
	return max(n, 256)
}

// scaledDim shrinks a dimension whose nonzero count grows quadratically
// (the dense matrix) by the square root of the divisor.
func scaledDim(paperDim int, sc Scale) int {
	n := int(float64(paperDim) / math.Sqrt(sc.divisor()))
	return max(n, 64)
}

// Info describes one matrix of the suite.
type Info struct {
	ID     int    // 1-based position in Table I
	Name   string // paper name, e.g. "09.rajat31"
	Domain string // application domain from Table I
	// Geometry reports the paper's category split: matrices #17-#30 come
	// from problems with an underlying 2D/3D geometry, #3-#16 do not, and
	// #1-#2 are the special-purpose pair excluded from the "wins"
	// statistics.
	Geometry bool
	// Special marks the dense and random matrices (#1, #2).
	Special bool
	// Archetype is a one-line description of the synthetic generator used
	// in place of the collection matrix.
	Archetype string
}

var infos = []Info{
	{1, "01.dense", "special", false, true, "fully dense square matrix"},
	{2, "02.random", "special", false, true, "uniform random positions, no structure"},
	{3, "03.cfd2", "CFD", false, false, "unstructured mesh, medium rows, local couplings"},
	{4, "04.parabolic_fem", "CFD", false, false, "2D 5-point stencil grid"},
	{5, "05.Ga41As41H72", "Chemistry", false, false, "orbital clusters: ragged dense row blocks + exchange terms"},
	{6, "06.ASIC_680k", "Circuit", false, false, "diagonal + scattered couplings + dense supply rails"},
	{7, "07.G3_circuit", "Circuit", false, false, "very short rows, mostly local couplings"},
	{8, "08.Hamrle3", "Circuit", false, false, "short rows, local couplings, no hubs"},
	{9, "09.rajat31", "Circuit", false, false, "short rows with hub rows/columns"},
	{10, "10.cage15", "Graph", false, false, "mild power-law graph, medium rows"},
	{11, "11.wb-edu", "Graph", false, false, "web graph: power-law degrees, scattered targets"},
	{12, "12.wikipedia", "Graph", false, false, "heavy power-law graph, extremely irregular"},
	{13, "13.degme", "Lin. Prog.", false, false, "rectangular LP: banded constraint rows"},
	{14, "14.rail4284", "Lin. Prog.", false, false, "rectangular LP: sparse clustered rows"},
	{15, "15.spal_004", "Lin. Prog.", false, false, "LP with long dense constraint bands"},
	{16, "16.bone010", "Other", false, false, "3-dof FEM: dense 3x3 node blocks"},
	{17, "17.kkt_power", "Power", true, false, "KKT saddle point: stencil + constraint coupling"},
	{18, "18.largebasis", "Opt.", true, false, "banded matrix of aligned dense 4x4 tiles"},
	{19, "19.TSOPF_RS", "Opt.", true, false, "very long dense row segments"},
	{20, "20.af_shell10", "Struct.", true, false, "3-dof FEM shell, medium connectivity"},
	{21, "21.audikw_1", "Struct.", true, false, "3-dof FEM, high connectivity"},
	{22, "22.F1", "Struct.", true, false, "3-dof FEM, high connectivity"},
	{23, "23.fdiff", "Struct.", true, false, "3D 7-point finite-difference stencil"},
	{24, "24.gearbox", "Struct.", true, false, "2-dof FEM: dense 2x2 node blocks"},
	{25, "25.inline_1", "Struct.", true, false, "3-dof FEM, high connectivity"},
	{26, "26.ldoor", "Struct.", true, false, "3-dof FEM, moderate connectivity"},
	{27, "27.pwtk", "Struct.", true, false, "3-dof FEM, moderate connectivity"},
	{28, "28.thermal2", "Other", true, false, "unstructured diffusion: short irregular local rows"},
	{29, "29.nd24k", "Other", true, false, "dense row segments, very heavy rows"},
	{30, "30.stomach", "Other", true, false, "unstructured 3D mesh, near-diagonal couplings"},
}

// Count is the number of matrices in the suite.
const Count = 30

// Infos returns the metadata for all 30 matrices in suite order.
func Infos() []Info {
	out := make([]Info, len(infos))
	copy(out, infos)
	return out
}

// InfoByID returns the metadata for matrix id (1-based).
func InfoByID(id int) (Info, error) {
	if id < 1 || id > len(infos) {
		return Info{}, fmt.Errorf("suite: matrix id %d outside [1,%d]", id, len(infos))
	}
	return infos[id-1], nil
}

// InfoByName returns the metadata for a matrix by its full name
// ("09.rajat31") or bare name ("rajat31").
func InfoByName(name string) (Info, error) {
	for _, in := range infos {
		if in.Name == name || in.Name[3:] == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("suite: unknown matrix %q", name)
}

// Build generates matrix id (1-based, as in Table I) at the given scale.
// Generation is deterministic: the same id and scale always produce the
// same matrix.
func Build[T floats.Float](id int, sc Scale) (*mat.COO[T], error) {
	if id < 1 || id > len(infos) {
		return nil, fmt.Errorf("suite: matrix id %d outside [1,%d]", id, len(infos))
	}
	seed := int64(1000 + id)
	s := func(n int) int { return scaled(n, sc) }
	var m *mat.COO[T]
	switch id {
	case 1:
		m = genDense[T](scaledDim(2000, sc), seed)
	case 2:
		m = genUniformRandom[T](s(100_000), s(100_000), 150, seed)
	case 3:
		m = genThermal[T](s(123_440), 13, 300, seed)
	case 4:
		side := int(math.Sqrt(float64(s(525_825))))
		m = genGrid2D[T](side, side, false, seed)
	case 5:
		m = genChemistry[T](s(268_096), 8, 35, seed)
	case 6:
		m = genCircuit[T](s(682_862), 5, 6, seed)
	case 7:
		m = genCircuit[T](s(1_585_478), 3, 2, seed)
	case 8:
		m = genCircuit[T](s(1_447_360), 4, 0, seed)
	case 9:
		m = genCircuit[T](s(4_690_002), 4, 4, seed)
	case 10:
		m = genPowerLaw[T](s(5_154_859), 19, 2.0, seed)
	case 11:
		m = genPowerLaw[T](s(9_845_725), 6, 1.8, seed)
	case 12:
		m = genPowerLaw[T](s(3_148_440), 12, 1.3, seed)
	case 13:
		rows := s(659_415)
		m = genLP[T](rows, max(rows/3, 64), 12, seed)
	case 14:
		rows := s(1_096_894)
		m = genLP[T](rows, max(rows/4, 64), 10, seed)
	case 15:
		m = genLP[T](s(321_696), s(321_696), 140, seed)
	case 16:
		m = genFEM[T](s(986_703)/3, 3, 11, seed)
	case 17:
		n := s(2_063_494)
		m = genSaddle[T](n*7/10, n*3/10, 3, seed)
	case 18:
		m = genBandedBlocks[T](s(440_020)/4*4, 4, 4, seed)
	case 19:
		n := s(38_120)
		m = genDenseRows[T](n, min(424, n/2), seed)
	case 20:
		m = genFEM[T](s(1_508_065)/3, 3, 5, seed)
	case 21:
		m = genFEM[T](s(943_695)/3, 3, 13, seed)
	case 22:
		m = genFEM[T](s(343_791)/3, 3, 12, seed)
	case 23:
		side := int(math.Cbrt(float64(s(4_000_000))))
		m = genGrid3D[T](side, side, side, seed)
	case 24:
		m = genFEM[T](s(153_746)/2, 2, 14, seed)
	case 25:
		m = genFEM[T](s(503_712)/3, 3, 11, seed)
	case 26:
		m = genFEM[T](s(952_203)/3, 3, 7, seed)
	case 27:
		m = genFEM[T](s(217_918)/3, 3, 8, seed)
	case 28:
		m = genThermal[T](s(1_228_045), 4, 600, seed)
	case 29:
		n := s(72_000)
		m = genDenseRows[T](n, min(200, n/2), seed)
	case 30:
		m = genThermal[T](s(213_360), 14, 6, seed)
	}
	return m, nil
}

// MustBuild is Build for known-valid ids; it panics on error.
func MustBuild[T floats.Float](id int, sc Scale) *mat.COO[T] {
	m, err := Build[T](id, sc)
	if err != nil {
		panic(err)
	}
	return m
}

// BuildAll generates the whole suite at the given scale, indexed 0..29
// for ids 1..30.
func BuildAll[T floats.Float](sc Scale) []*mat.COO[T] {
	out := make([]*mat.COO[T], Count)
	for id := 1; id <= Count; id++ {
		out[id-1] = MustBuild[T](id, sc)
	}
	return out
}
