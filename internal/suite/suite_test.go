package suite

import (
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/mat"
)

func TestInfosComplete(t *testing.T) {
	is := Infos()
	if len(is) != Count {
		t.Fatalf("suite has %d entries, want %d", len(is), Count)
	}
	for i, in := range is {
		if in.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, in.ID)
		}
		if in.Name == "" || in.Domain == "" || in.Archetype == "" {
			t.Errorf("entry %d has empty metadata: %+v", i, in)
		}
	}
	// The paper's category split: #3-#16 non-geometry, #17-#30 geometry.
	for _, in := range is {
		wantGeo := in.ID >= 17
		if in.ID <= 2 {
			wantGeo = false
		}
		if in.Geometry != wantGeo {
			t.Errorf("%s: Geometry = %v, want %v", in.Name, in.Geometry, wantGeo)
		}
		if (in.ID <= 2) != in.Special {
			t.Errorf("%s: Special = %v", in.Name, in.Special)
		}
	}
}

func TestLookup(t *testing.T) {
	in, err := InfoByID(23)
	if err != nil || in.Name != "23.fdiff" {
		t.Errorf("InfoByID(23) = %+v, %v", in, err)
	}
	if _, err := InfoByID(0); err == nil {
		t.Error("InfoByID(0) accepted")
	}
	if _, err := InfoByID(31); err == nil {
		t.Error("InfoByID(31) accepted")
	}
	in, err = InfoByName("rajat31")
	if err != nil || in.ID != 9 {
		t.Errorf("InfoByName(rajat31) = %+v, %v", in, err)
	}
	in, err = InfoByName("09.rajat31")
	if err != nil || in.ID != 9 {
		t.Errorf("InfoByName(09.rajat31) = %+v, %v", in, err)
	}
	if _, err := InfoByName("nonexistent"); err == nil {
		t.Error("InfoByName(nonexistent) accepted")
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		sc, err := ParseScale(name)
		if err != nil || sc.String() != name {
			t.Errorf("ParseScale(%q) = %v, %v", name, sc, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale(huge) accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, id := range []int{2, 9, 16, 23} {
		a := MustBuild[float64](id, Tiny)
		b := MustBuild[float64](id, Tiny)
		if a.NNZ() != b.NNZ() || a.Rows() != b.Rows() {
			t.Fatalf("matrix %d not deterministic: %d/%d vs %d/%d nnz/rows",
				id, a.NNZ(), a.Rows(), b.NNZ(), b.Rows())
		}
		for i, e := range a.Entries() {
			if b.Entries()[i] != e {
				t.Fatalf("matrix %d entry %d differs", id, i)
			}
		}
	}
}

func TestBuildAllTiny(t *testing.T) {
	ms := BuildAll[float64](Tiny)
	for i, m := range ms {
		in := infos[i]
		if m.NNZ() == 0 {
			t.Errorf("%s: empty matrix", in.Name)
		}
		if m.Rows() == 0 || m.Cols() == 0 {
			t.Errorf("%s: degenerate dims %dx%d", in.Name, m.Rows(), m.Cols())
		}
		if !m.Finalized() {
			t.Errorf("%s: not finalized", in.Name)
		}
	}
}

// TestArchetypeStructure spot-checks that the generators produce the
// structural signatures the blocked formats key on.
func TestArchetypeStructure(t *testing.T) {
	// FEM matrices (3-dof) must contain aligned dense 3-column runs:
	// high horizontal and vertical run fractions.
	fem := ComputeStatsFor(t, 21)
	if fem.HorizontalRunFraction < 0.5 {
		t.Errorf("audikw archetype horizontal run fraction = %.2f, want >= 0.5",
			fem.HorizontalRunFraction)
	}
	if fem.VerticalRunFraction < 0.5 {
		t.Errorf("audikw archetype vertical run fraction = %.2f, want >= 0.5",
			fem.VerticalRunFraction)
	}

	// The 3D stencil must be strongly diagonal.
	fdiff := ComputeStatsFor(t, 23)
	if fdiff.DiagonalRunFraction < 0.7 {
		t.Errorf("fdiff archetype diagonal run fraction = %.2f, want >= 0.7",
			fdiff.DiagonalRunFraction)
	}

	// The random matrix must have no runs beyond chance level: with
	// uniform placement the probability that a neighbour position is
	// occupied is the density itself.
	random := ComputeStatsFor(t, 2)
	density := float64(random.NNZ) / (float64(random.Rows) * float64(random.Cols))
	if random.HorizontalRunFraction > 2*density || random.DiagonalRunFraction > 2*density {
		t.Errorf("random archetype has structure: h=%.3f d=%.3f density=%.3f",
			random.HorizontalRunFraction, random.DiagonalRunFraction, density)
	}

	// TSOPF-like dense rows: very long average row length.
	tsopf := ComputeStatsFor(t, 19)
	if tsopf.AvgRowLen < 50 {
		t.Errorf("TSOPF archetype avg row length = %.1f, want >= 50", tsopf.AvgRowLen)
	}

	// The power-law graph must have wildly unequal row lengths.
	wiki := ComputeStatsFor(t, 12)
	if wiki.MaxRowLen < 10*int(wiki.AvgRowLen+1) {
		t.Errorf("wikipedia archetype max row %d vs avg %.1f: tail too light",
			wiki.MaxRowLen, wiki.AvgRowLen)
	}
}

// ComputeStatsFor builds matrix id at Tiny scale and returns its stats.
func ComputeStatsFor(t *testing.T, id int) mat.Stats {
	t.Helper()
	return mat.ComputeStats(MustBuild[float64](id, Tiny))
}

func TestRectangularLPMatrices(t *testing.T) {
	for _, id := range []int{13, 14} {
		m := MustBuild[float64](id, Tiny)
		if m.Rows() <= m.Cols() {
			t.Errorf("matrix %d: %dx%d, want tall rectangular", id, m.Rows(), m.Cols())
		}
	}
}

// TestFEMArchetypesHaveAlignedBlocks asserts the defining property of the
// structural matrices: a large fraction of their nonzeros sits in
// completely dense aligned dof x 1 blocks, so the decomposed formats
// extract most of the matrix.
func TestFEMArchetypesHaveAlignedBlocks(t *testing.T) {
	femIDs := map[int]int{16: 3, 20: 3, 21: 3, 22: 3, 24: 2, 25: 3, 26: 3, 27: 3}
	for id, dof := range femIDs {
		m := MustBuild[float64](id, Tiny)
		p := mat.PatternOf(m)
		cnt := blocks.CountRect(p, dof, 1)
		fullFrac := float64(cnt.FullBlocks*int64(dof)) / float64(p.NNZ())
		if fullFrac < 0.9 {
			t.Errorf("matrix %d (dof %d): only %.0f%% of nonzeros in full %dx1 blocks",
				id, dof, 100*fullFrac, dof)
		}
	}
}

// TestStencilArchetypeIsDiagonal asserts fdiff's defining property: BCSD
// stores it almost without padding at any block size.
func TestStencilArchetypeIsDiagonal(t *testing.T) {
	m := MustBuild[float64](23, Tiny)
	p := mat.PatternOf(m)
	for _, b := range []int{2, 4, 8} {
		cnt := blocks.CountDiag(p, b)
		padFrac := float64(cnt.Padding) / float64(cnt.Blocks*int64(b))
		if padFrac > 0.1 {
			t.Errorf("fdiff d%d: %.0f%% padding, want near zero", b, 100*padFrac)
		}
	}
}

// TestBandedBlocksArchetype asserts largebasis's defining property:
// perfect 4-aligned tiles, zero padding at the 2x4 and 4x2 shapes.
func TestBandedBlocksArchetype(t *testing.T) {
	m := MustBuild[float64](18, Tiny)
	p := mat.PatternOf(m)
	for _, s := range []blocks.Shape{blocks.RectShape(2, 4), blocks.RectShape(4, 2), blocks.RectShape(2, 2)} {
		cnt := blocks.CountForShape(p, s)
		if cnt.Padding != 0 {
			t.Errorf("largebasis %s: padding %d, want 0", s, cnt.Padding)
		}
	}
}

// TestScaleMonotonic asserts scales order the matrix sizes as documented.
func TestScaleMonotonic(t *testing.T) {
	for _, id := range []int{2, 9, 21} {
		tiny := MustBuild[float64](id, Tiny)
		small := MustBuild[float64](id, Small)
		if small.NNZ() <= tiny.NNZ() {
			t.Errorf("matrix %d: small nnz %d <= tiny nnz %d", id, small.NNZ(), tiny.NNZ())
		}
	}
}
