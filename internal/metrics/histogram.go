package metrics

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// DefLatencyBuckets are the default histogram bounds, in seconds: an
// exponential ladder from 10 microseconds to 10 seconds that resolves
// both in-cache SpMV panels and pathological stalls.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic observation: Observe
// increments one bucket counter, the total count and a CAS-maintained
// float64 sum, with no locks and no allocations. Bounds are upper bucket
// edges; an implicit +Inf bucket catches overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram returns a histogram over the given ascending upper
// bounds; nil or empty selects DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %g <= %g", i, b[i], b[i-1]))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. It is safe for concurrent use and performs
// no allocations (the bucket search is a linear scan over the small
// fixed bounds slice, branch-predictable for clustered latencies).
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// inside the bucket that holds it, the same estimate Prometheus's
// histogram_quantile computes. Values in the +Inf bucket are reported as
// the largest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if n == 0 {
				return h.bounds[i]
			}
			return lo + (h.bounds[i]-lo)*((target-cum)/n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// writePrometheus renders the histogram in the text exposition format:
// cumulative _bucket series, _sum and _count.
func (h *Histogram) writePrometheus(w io.Writer, name, help string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, h.Sum(), name, h.Count())
	return err
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
