// Package metrics is a dependency-free instrumentation kit for the
// serving subsystem: counters, gauges and latency histograms with atomic
// hot paths, collected in a Registry that renders the Prometheus text
// exposition format and a JSON-friendly snapshot for expvar.
//
// The write paths — Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe —
// are safe for concurrent use from any number of goroutines and perform
// no allocations, so they can sit on the per-request hot path of the
// SpMV service without perturbing the latencies they measure.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, cached bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind tags a registered metric for the exposition writers.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric series. labels is the rendered label
// set ("" for plain series, `shard="0"` for labeled ones); series
// sharing a name form one metric family and are rendered under one
// HELP/TYPE block.
type entry struct {
	name   string
	labels string
	help   string
	kind   kind
	m      any
}

// id is the series identity: the name, plus the label set when present.
func (e *entry) id() string {
	if e.labels == "" {
		return e.name
	}
	return e.name + "{" + e.labels + "}"
}

// Registry is a named collection of metrics. Registration methods are
// idempotent: asking for a name again returns the existing metric, and
// asking for it with a different kind panics (a programming error, like
// a duplicate flag). The zero Registry is ready to use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*entry
	kinds   map[string]kind // family name → kind, for the agreement check
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, labels, help string, k kind, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]*entry)
		r.kinds = make(map[string]kind)
	}
	e := &entry{name: name, labels: labels, help: help, kind: k}
	id := e.id()
	if old, ok := r.entries[id]; ok {
		if old.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered with a different kind", id))
		}
		return old.m
	}
	// All series of one family must agree on kind, or the grouped
	// exposition would lie about the family type.
	if fk, ok := r.kinds[name]; ok && fk != k {
		panic(fmt.Sprintf("metrics: %q re-registered with a different kind", name))
	}
	e.m = mk()
	r.entries[id] = e
	r.kinds[name] = k
	r.order = append(r.order, id)
	return e.m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, "", help, kindCounter, func() any { return new(Counter) }).(*Counter)
}

// LabeledCounter returns the counter series name{labels}, creating it on
// first use. labels is a rendered Prometheus label set without braces,
// e.g. `shard="3",replica="127.0.0.1:9001"`; series sharing a name form
// one family and render under a single HELP/TYPE block. The serving
// layer uses it for per-shard retry/hedge/breaker counters.
func (r *Registry) LabeledCounter(name, labels, help string) *Counter {
	return r.register(name, labels, help, kindCounter, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, "", help, kindGauge, func() any { return new(Gauge) }).(*Gauge)
}

// LabeledGauge returns the gauge series name{labels}, creating it on
// first use; see LabeledCounter for the labels form.
func (r *Registry) LabeledGauge(name, labels, help string) *Gauge {
	return r.register(name, labels, help, kindGauge, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil selects
// DefLatencyBuckets). Histograms do not support labels.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, "", help, kindHistogram, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// snapshot returns the entries in registration order without holding the
// lock during rendering.
func (r *Registry) ordered() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.entries[id])
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4). Families keep the order their first series was
// registered in, and labeled series of one family are grouped under a
// single HELP/TYPE block as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.ordered()
	byName := make(map[string][]*entry, len(entries))
	var names []string
	for _, e := range entries {
		if _, seen := byName[e.name]; !seen {
			names = append(names, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}
	for _, name := range names {
		fam := byName[name]
		typ := "counter"
		switch fam[0].kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			// Histograms are unlabeled: one series per family.
			if err := fam[0].m.(*Histogram).writePrometheus(w, name, fam[0].help); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, fam[0].help, name, typ); err != nil {
			return err
		}
		for _, e := range fam {
			var err error
			if e.kind == kindCounter {
				_, err = fmt.Fprintf(w, "%s %d\n", e.id(), e.m.(*Counter).Value())
			} else {
				_, err = fmt.Fprintf(w, "%s %d\n", e.id(), e.m.(*Gauge).Value())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// HistogramSnapshot is the JSON-friendly summary of a histogram exposed
// through Snapshot (and from there through /debug/vars).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns every metric as a JSON-marshalable value keyed by
// series id (the name, plus the label set for labeled series): counters
// and gauges as numbers, histograms as HistogramSnapshot. The serving
// layer publishes this through expvar.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, e := range r.ordered() {
		switch e.kind {
		case kindCounter:
			out[e.id()] = e.m.(*Counter).Value()
		case kindGauge:
			out[e.id()] = e.m.(*Gauge).Value()
		case kindHistogram:
			h := e.m.(*Histogram)
			out[e.id()] = HistogramSnapshot{
				Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	return out
}

// Names returns the registered series ids in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	sort.Strings(out)
	return out
}
