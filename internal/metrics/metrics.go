// Package metrics is a dependency-free instrumentation kit for the
// serving subsystem: counters, gauges and latency histograms with atomic
// hot paths, collected in a Registry that renders the Prometheus text
// exposition format and a JSON-friendly snapshot for expvar.
//
// The write paths — Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe —
// are safe for concurrent use from any number of goroutines and perform
// no allocations, so they can sit on the per-request hot path of the
// SpMV service without perturbing the latencies they measure.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, cached bytes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind tags a registered metric for the exposition writers.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind kind
	m    any
}

// Registry is a named collection of metrics. Registration methods are
// idempotent: asking for a name again returns the existing metric, and
// asking for it with a different kind panics (a programming error, like
// a duplicate flag). The zero Registry is ready to use.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, help string, k kind, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]*entry)
	}
	if e, ok := r.entries[name]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("metrics: %q re-registered with a different kind", name))
		}
		return e.m
	}
	e := &entry{name: name, help: help, kind: k, m: mk()}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e.m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (nil selects
// DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func() any { return NewHistogram(bounds) }).(*Histogram)
}

// snapshot returns the entries in registration order without holding the
// lock during rendering.
func (r *Registry) ordered() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.ordered() {
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				e.name, e.help, e.name, e.name, e.m.(*Counter).Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				e.name, e.help, e.name, e.name, e.m.(*Gauge).Value())
		case kindHistogram:
			err = e.m.(*Histogram).writePrometheus(w, e.name, e.help)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is the JSON-friendly summary of a histogram exposed
// through Snapshot (and from there through /debug/vars).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns every metric as a JSON-marshalable value keyed by
// name: counters and gauges as numbers, histograms as
// HistogramSnapshot. The serving layer publishes this through expvar.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, e := range r.ordered() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.m.(*Counter).Value()
		case kindGauge:
			out[e.name] = e.m.(*Gauge).Value()
		case kindHistogram:
			h := e.m.(*Histogram)
			out[e.name] = HistogramSnapshot{
				Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	return out
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	sort.Strings(out)
	return out
}
