package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var r Registry
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	var r Registry
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "help")
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106.5) > 1e-12 {
		t.Fatalf("sum = %g, want 106.5", got)
	}
	if got := h.Mean(); math.Abs(got-21.3) > 1e-12 {
		t.Fatalf("mean = %g, want 21.3", got)
	}
	// 3 of 5 observations are <= 2, so the median sits in the (1,2] bucket.
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %g, want in (1, 2]", q)
	}
	// The +Inf bucket reports the largest finite bound.
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %g, want 8", q)
	}
	if q := NewHistogram(nil).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the first bucket
	}
	// Interpolation walks the (0,10] bucket linearly.
	if q := h.Quantile(0.5); math.Abs(q-5) > 1e-9 {
		t.Fatalf("p50 = %g, want 5", q)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram(nil)
	c := new(Counter)
	g := new(Gauge)
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(3e-3)
		c.Inc()
		g.Add(1)
	}); n != 0 {
		t.Fatalf("hot path allocates %v times per op, want 0", n)
	}
}

// TestConcurrentWriters hammers every metric type from many goroutines;
// correctness of the totals plus the race detector (make race) cover the
// atomic hot paths.
func TestConcurrentWriters(t *testing.T) {
	var r Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%5) + 0.5)
			}
		}(w)
	}
	// Concurrent readers must be safe too.
	for i := 0; i < 100; i++ {
		_ = h.Quantile(0.95)
		_ = r.Snapshot()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Fatalf("gauge = %d, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
	wantSum := float64(workers) * (10000.0 / 5.0) * (0.5 + 1.5 + 2.5 + 3.5 + 4.5)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestWritePrometheus(t *testing.T) {
	var r Registry
	r.Counter("spmvd_requests_total", "served requests").Add(3)
	r.Gauge("spmvd_queue_depth", "queued requests").Set(2)
	h := r.Histogram("spmvd_request_seconds", "request latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE spmvd_requests_total counter",
		"spmvd_requests_total 3",
		"# TYPE spmvd_queue_depth gauge",
		"spmvd_queue_depth 2",
		"# TYPE spmvd_request_seconds histogram",
		`spmvd_request_seconds_bucket{le="0.01"} 1`,
		`spmvd_request_seconds_bucket{le="0.1"} 2`,
		`spmvd_request_seconds_bucket{le="+Inf"} 3`,
		"spmvd_request_seconds_sum 7.055",
		"spmvd_request_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	var r Registry
	r.Counter("c", "").Add(2)
	h := r.Histogram("h", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	snap := r.Snapshot()
	if got := snap["c"].(uint64); got != 2 {
		t.Fatalf("snapshot counter = %v, want 2", got)
	}
	hs := snap["h"].(HistogramSnapshot)
	if hs.Count != 2 || math.Abs(hs.Sum-5.5) > 1e-12 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
}

// TestLabeledSeries covers the per-shard serving counters: labeled
// series share one HELP/TYPE block per family, keep independent values,
// and snapshot under their full series id.
func TestLabeledSeries(t *testing.T) {
	var r Registry
	a := r.LabeledCounter("shard_retries_total", `shard="0"`, "retries per shard")
	b := r.LabeledCounter("shard_retries_total", `shard="1"`, "retries per shard")
	if a == b {
		t.Fatal("distinct label sets returned the same counter")
	}
	if again := r.LabeledCounter("shard_retries_total", `shard="0"`, "retries per shard"); again != a {
		t.Fatal("re-registration did not return the existing series")
	}
	a.Add(3)
	b.Inc()
	r.LabeledGauge("shard_breaker_open", `shard="0"`, "breaker state").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE shard_retries_total counter",
		`shard_retries_total{shard="0"} 3`,
		`shard_retries_total{shard="1"} 1`,
		`shard_breaker_open{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE shard_retries_total"); n != 1 {
		t.Errorf("family TYPE block emitted %d times, want 1:\n%s", n, out)
	}
	snap := r.Snapshot()
	if got := snap[`shard_retries_total{shard="0"}`].(uint64); got != 3 {
		t.Fatalf("labeled snapshot = %v, want 3", got)
	}

	// A family must not mix kinds, labeled or not.
	defer func() {
		if recover() == nil {
			t.Fatal("mixing kinds within one family did not panic")
		}
	}()
	r.LabeledGauge("shard_retries_total", `shard="2"`, "wrong kind")
}

// TestLabeledConcurrent hammers two series of one family from racing
// writers while a reader renders, for the -race pass.
func TestLabeledConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.LabeledCounter("hits_total", fmt.Sprintf("worker=%q", fmt.Sprint(w%2)), "hits")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sb strings.Builder
		r.WritePrometheus(&sb)
	}()
	wg.Wait()
	var total uint64
	for _, id := range r.Names() {
		total += r.Snapshot()[id].(uint64)
	}
	if total != 4000 {
		t.Fatalf("lost increments: total = %d, want 4000", total)
	}
}
