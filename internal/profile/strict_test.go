package profile

import (
	"bytes"
	"strings"
	"testing"

	"blockspmv/internal/blocks"
)

// fullTable builds a synthetic, structurally complete profile without the
// cost of an actual profiling run.
func fullTable() *Table {
	t := &Table{Precision: "dp", Entries: make(map[Key]Entry)}
	for _, s := range blocks.AllShapes() {
		for _, impl := range blocks.Impls() {
			t.Entries[Key{Shape: s, Impl: impl}] = Entry{Tb: 1e-9, Nof: 0.5}
		}
	}
	return t
}

func TestSaveWritesVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := fullTable().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		t.Errorf("saved profile carries no version field:\n%s", buf.String()[:120])
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("reloading own output: %v", err)
	}
}

func TestLoadStrict(t *testing.T) {
	cases := map[string]string{
		"future version":   `{"version":99,"entries":[]}`,
		"negative version": `{"version":-1,"entries":[]}`,
		"zero tb":          `{"entries":[{"shape":"2x2","impl":"scalar","tb":0,"nof":1}]}`,
		"negative tb":      `{"entries":[{"shape":"2x2","impl":"scalar","tb":-1e-9,"nof":1}]}`,
		"negative nof":     `{"entries":[{"shape":"2x2","impl":"scalar","tb":1e-9,"nof":-0.5}]}`,
		"duplicate row": `{"entries":[
			{"shape":"2x2","impl":"scalar","tb":1e-9,"nof":1},
			{"shape":"2x2","impl":"scalar","tb":2e-9,"nof":1}]}`,
		"unknown variant": `{"entries":[{"shape":"1x1","impl":"scalar","variant":"zlib","tb":1e-9,"nof":1}]}`,
	}
	for name, src := range cases {
		if _, err := Load(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Legacy profiles without a version field still load.
	if _, err := Load(bytes.NewReader([]byte(`{"entries":[{"shape":"2x2","impl":"scalar","tb":1e-9,"nof":1}]}`))); err != nil {
		t.Errorf("legacy versionless profile rejected: %v", err)
	}
}

func TestTableValidate(t *testing.T) {
	if err := fullTable().Validate(); err != nil {
		t.Fatalf("complete table: %v", err)
	}
	var nilTable *Table
	if err := nilTable.Validate(); err == nil {
		t.Error("nil table validated")
	}
	if err := (&Table{}).Validate(); err == nil {
		t.Error("empty table validated")
	}

	missing := fullTable()
	delete(missing.Entries, Key{Shape: blocks.RectShape(2, 2), Impl: blocks.Vector})
	if err := missing.Validate(); err == nil {
		t.Error("incomplete table validated")
	}

	bad := fullTable()
	bad.Entries[Key{Shape: blocks.RectShape(1, 1), Impl: blocks.Scalar}] = Entry{Tb: -1, Nof: 0}
	if err := bad.Validate(); err == nil {
		t.Error("table with negative tb validated")
	}
}
