package profile

import (
	"bytes"
	"testing"
)

// FuzzLoad exercises the profile reader against arbitrary bytes: it must
// never panic, and any table it accepts must be usable — every entry
// well-formed — and survive a save/load round trip.
func FuzzLoad(f *testing.F) {
	// A valid single-row profile as a structural seed.
	f.Add([]byte(`{"version":1,"precision":"dp","entries":[{"shape":"2x2","impl":"scalar","tb":1e-9,"nof":0.5}]}`))
	// A full table as Save writes it.
	var buf bytes.Buffer
	if err := fullTable().Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Corruption seeds: future version, bad timings, duplicates, noise.
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"entries":[{"shape":"2x2","impl":"scalar","tb":-1,"nof":1}]}`))
	f.Add([]byte(`{"entries":[{"shape":"1x1","impl":"scalar","tb":null,"nof":1}]}`))
	f.Add([]byte(`{"entries":[{"shape":"d4","impl":"simd","tb":1e-9,"nof":1},{"shape":"d4","impl":"simd","tb":1e-9,"nof":1}]}`))
	f.Add([]byte("\x00\xff{{{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for k, e := range tab.Entries {
			if err := checkEntry(k, e); err != nil {
				t.Fatalf("accepted table holds invalid entry: %v", err)
			}
		}
		var out bytes.Buffer
		if err := tab.Save(&out); err != nil {
			t.Fatalf("cannot save accepted table: %v", err)
		}
		if _, err := Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("cannot reload saved table: %v", err)
		}
	})
}
