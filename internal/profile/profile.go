// Package profile measures the per-block kernel parameters the MEMCOMP and
// OVERLAP models need (Section IV):
//
//   - t_b: the execution time of a single block of each (shape, impl)
//     combination, "obtained by profiling the execution of a very small
//     dense matrix, which is stored using every blocking method and block
//     under consideration and fits in the L1 cache of the target machine."
//   - nof_b: the non-overlapping factor of equation (4), "obtained ...
//     by profiling a large dense matrix that exceeds the highest level of
//     cache": nof_b = (t_real_b - t_MEM) / (nb * t_b).
//
// CSR is profiled as the degenerate 1x1 blocking with nb = nnz.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"blockspmv/internal/bcsd"
	"blockspmv/internal/bcsr"
	"blockspmv/internal/blocks"
	"blockspmv/internal/csr"
	"blockspmv/internal/csrdu"
	"blockspmv/internal/floats"
	"blockspmv/internal/formats"
	"blockspmv/internal/machine"
	"blockspmv/internal/mat"
	"blockspmv/internal/partition"
	"blockspmv/internal/sell"
	"blockspmv/internal/vbl"
	"blockspmv/internal/vbr"
)

// Key identifies one profiled kernel: a block shape, an implementation
// class, and the kernel variant (plain explicit-index kernels vs the
// CSR-DU delta decoder, which shares the 1x1 shape with CSR but has a
// different per-block cost).
type Key struct {
	Shape   blocks.Shape
	Impl    blocks.Impl
	Variant blocks.Variant
}

func (k Key) String() string {
	s := k.Shape.String() + "/" + k.Impl.String()
	if k.Variant != blocks.Plain {
		s += "/" + k.Variant.String()
	}
	return s
}

// Entry holds the profiled parameters of one kernel.
type Entry struct {
	// Tb is the estimated execution time of a single block, in seconds.
	Tb float64
	// Nof is the non-overlapping factor: the fraction of the computational
	// time that is not hidden behind memory transfers.
	Nof float64
}

// Table is a complete kernel profile for one precision on one machine.
type Table struct {
	Precision string
	Machine   machine.Machine
	Entries   map[Key]Entry
}

// Lookup returns the profile entry for a shape and impl of the plain
// kernel variant.
func (t *Table) Lookup(s blocks.Shape, impl blocks.Impl) (Entry, bool) {
	return t.LookupVariant(s, impl, blocks.Plain)
}

// LookupVariant returns the profile entry for a shape, impl and kernel
// variant.
func (t *Table) LookupVariant(s blocks.Shape, impl blocks.Impl, v blocks.Variant) (Entry, bool) {
	e, ok := t.Entries[Key{Shape: s, Impl: impl, Variant: v}]
	return e, ok
}

// Options tunes the profiling run. The zero value selects defaults
// derived from the machine.
type Options struct {
	// TbBytes is the target CSR working set of the t_b profiling matrix.
	// Default: half the L1 data cache.
	TbBytes int64
	// NofBytes is the target CSR working set of the nof profiling matrix.
	// Default: 16x L2, clamped to [32 MiB, 256 MiB]. (The paper exceeds
	// the highest cache level; on hosts advertising very large shared
	// LLCs the clamp keeps profiling affordable while still streaming
	// well beyond the private caches, consistent with how the effective
	// bandwidth itself is measured.)
	NofBytes int64
	// MaxNof clamps the measured non-overlapping factor. Default 2.
	MaxNof float64
}

func (o Options) withDefaults(m machine.Machine) Options {
	if o.TbBytes == 0 {
		o.TbBytes = m.L1DataBytes / 2
		if o.TbBytes == 0 {
			o.TbBytes = machine.DefaultL1 / 2
		}
	}
	if o.NofBytes == 0 {
		o.NofBytes = machine.DefaultTriadBytes(m.L2Bytes)
	}
	if o.MaxNof == 0 {
		o.MaxNof = 2
	}
	return o
}

// buildDense stores the dense matrix d in the format identified by key.
func buildDense[T floats.Float](d *mat.COO[T], k Key) formats.Instance[T] {
	switch {
	case k.Variant == blocks.DU:
		return csrdu.New(d, k.Impl)
	case k.Variant == blocks.VBR:
		// On a dense matrix run detection would collapse to one giant
		// block and under-price the per-block walk; a uniform partition
		// of modest blocks exercises the real VBR streaming pattern.
		pt := partition.VBRPartition{
			Rpntr: uniformBounds(d.Rows(), profileVBRBlock),
			Cpntr: uniformBounds(d.Cols(), profileVBRBlock),
		}
		a, err := vbr.NewPartitioned(d, pt, k.Impl)
		if err != nil {
			panic("profile: " + err.Error())
		}
		return a
	case k.Variant == blocks.VBL:
		return vbl.New(d, k.Impl)
	case k.Variant == blocks.SELL:
		// Dense rows are uniform, so any σ gives a padding-free layout;
		// σ=1 skips the pointless sort. C=8 is the mid-size generated
		// slice height.
		return sell.New(d, profileSellChunk, 1, k.Impl)
	case k.Shape.IsUnit():
		return csr.FromCOO(d, k.Impl)
	case k.Shape.Kind == blocks.Diag:
		return bcsd.New(d, k.Shape.R, k.Impl)
	default:
		return bcsr.New(d, k.Shape.R, k.Shape.C, k.Impl)
	}
}

// profileVBRBlock is the uniform block side used to profile the VBR
// kernel variant on the dense matrices.
const profileVBRBlock = 8

// profileSellChunk is the slice height used to profile the SELL kernel
// variant on the dense matrices.
const profileSellChunk = 8

// uniformBounds returns partition boundaries 0, step, 2*step, ..., n.
func uniformBounds(n, step int) []int32 {
	b := []int32{0}
	for v := step; v < n; v += step {
		b = append(b, int32(v))
	}
	b = append(b, int32(n))
	return b
}

// denseSide returns the side length of a dense matrix whose CSR working
// set is approximately wsBytes for element size valSize.
func denseSide(wsBytes int64, valSize int) int {
	n := int(math.Sqrt(float64(wsBytes) / float64(valSize+4)))
	return max(n, 16)
}

// blockCount returns the number of blocks the instance stores, which for
// the single-component formats used here is Components()[0].Blocks.
func blockCount[T floats.Float](inst formats.Instance[T]) int64 {
	return inst.Components()[0].Blocks
}

// Collect profiles every kernel (all shapes x scalar/simd, plus the CSR
// 1x1 degenerate) for precision T on machine m. The machine's bandwidth
// must already be measured (Machine.BandwidthBytesPerSec > 0).
func Collect[T floats.Float](m machine.Machine, opts Options) *Table {
	opts = opts.withDefaults(m)
	if m.BandwidthBytesPerSec <= 0 {
		panic("profile: machine bandwidth not measured")
	}
	valSize := floats.SizeOf[T]()

	small := mat.Dense[T](denseSide(opts.TbBytes, valSize), denseSide(opts.TbBytes, valSize))
	big := mat.Dense[T](denseSide(opts.NofBytes, valSize), denseSide(opts.NofBytes, valSize))

	t := &Table{
		Precision: floats.PrecisionName[T](),
		Machine:   m,
		Entries:   make(map[Key]Entry),
	}
	for _, s := range blocks.AllShapes() {
		for _, impl := range blocks.Impls() {
			k := Key{Shape: s, Impl: impl}
			t.Entries[k] = profileOne[T](small, big, k, m, opts)
		}
	}
	// The variant kernels share the degenerate 1x1 shape with CSR but
	// have their own per-unit cost: CSR-DU per nonzero including the
	// delta decode, VBR and 1D-VBL per stored scalar of their
	// variable-size block walks.
	for _, v := range variantKernels() {
		for _, impl := range blocks.Impls() {
			k := Key{Shape: blocks.RectShape(1, 1), Impl: impl, Variant: v}
			t.Entries[k] = profileOne[T](small, big, k, m, opts)
		}
	}
	return t
}

// variantKernels lists the non-plain kernel variants the profile covers.
func variantKernels() []blocks.Variant {
	return []blocks.Variant{blocks.DU, blocks.VBR, blocks.VBL, blocks.SELL}
}

// profileOne measures Tb on the L1-resident matrix and Nof on the
// cache-exceeding matrix for a single kernel.
func profileOne[T floats.Float](small, big *mat.COO[T], k Key, m machine.Machine, opts Options) Entry {
	// t_b: batch enough repetitions that timer resolution is irrelevant.
	si := buildDense(small, k)
	x := floats.RandVector[T](si.Cols(), 11)
	y := make([]T, si.Rows())
	nbSmall := blockCount(si)
	perMul := machine.TimeAvg(5, 400, func() { si.Mul(x, y) })
	tb := perMul / float64(nbSmall)

	// nof: one construction, a handful of timed full passes.
	bi := buildDense(big, k)
	bx := floats.RandVector[T](bi.Cols(), 12)
	by := make([]T, bi.Rows())
	tReal := machine.Time(1, 3, func() { bi.Mul(bx, by) })
	ws := formats.WorkingSetBytes(bi)
	tMem := float64(ws) / m.BandwidthBytesPerSec
	nbBig := blockCount(bi)

	nof := (tReal - tMem) / (float64(nbBig) * tb)
	if nof < 0 {
		nof = 0
	}
	if nof > opts.MaxNof {
		nof = opts.MaxNof
	}
	return Entry{Tb: tb, Nof: nof}
}

// Version is the profile file format version Save writes. Load accepts
// files up to this version; files without a version field are the legacy
// pre-versioning layout and load as version 0.
const Version = 1

// checkEntry rejects timings a model cannot price with: Tb must be a
// positive finite time, Nof a finite non-negative factor.
func checkEntry(k Key, e Entry) error {
	if math.IsNaN(e.Tb) || math.IsInf(e.Tb, 0) || e.Tb <= 0 {
		return fmt.Errorf("profile: entry %v has invalid tb %v (want positive finite)", k, e.Tb)
	}
	if math.IsNaN(e.Nof) || math.IsInf(e.Nof, 0) || e.Nof < 0 {
		return fmt.Errorf("profile: entry %v has invalid nof %v (want non-negative finite)", k, e.Nof)
	}
	return nil
}

// Validate reports whether the table can drive the profiled models
// (MEMCOMP, OVERLAP): a well-formed entry for every plain (shape, impl)
// combination the candidate space prices. The selection layer uses it to
// decide between modelled selection and the degraded CSR fallback.
func (t *Table) Validate() error {
	if t == nil || t.Entries == nil {
		return fmt.Errorf("profile: empty table")
	}
	for _, s := range blocks.AllShapes() {
		for _, impl := range blocks.Impls() {
			k := Key{Shape: s, Impl: impl}
			e, ok := t.Entries[k]
			if !ok {
				return fmt.Errorf("profile: missing entry for %v", k)
			}
			if err := checkEntry(k, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonEntry is the serialised form of one profile row. Variant is empty
// for plain kernels so profiles written before the field existed load
// unchanged.
type jsonEntry struct {
	Shape   string  `json:"shape"`
	Impl    string  `json:"impl"`
	Variant string  `json:"variant,omitempty"`
	Tb      float64 `json:"tb"`
	Nof     float64 `json:"nof"`
}

type jsonTable struct {
	Version   int             `json:"version"`
	Precision string          `json:"precision"`
	Machine   machine.Machine `json:"machine"`
	Entries   []jsonEntry     `json:"entries"`
}

// Save writes the profile as JSON.
func (t *Table) Save(w io.Writer) error {
	jt := jsonTable{Version: Version, Precision: t.Precision, Machine: t.Machine}
	for _, s := range blocks.AllShapes() {
		for _, impl := range blocks.Impls() {
			if e, ok := t.Lookup(s, impl); ok {
				jt.Entries = append(jt.Entries, jsonEntry{
					Shape: s.String(), Impl: impl.String(), Tb: e.Tb, Nof: e.Nof,
				})
			}
		}
	}
	for _, v := range variantKernels() {
		for _, impl := range blocks.Impls() {
			if e, ok := t.LookupVariant(blocks.RectShape(1, 1), impl, v); ok {
				jt.Entries = append(jt.Entries, jsonEntry{
					Shape: "1x1", Impl: impl.String(), Variant: v.String(),
					Tb: e.Tb, Nof: e.Nof,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// Load reads a profile previously written by Save. It is strict: files
// from a newer format version, rows with unparseable shapes, implementations
// or variants, duplicate rows, and non-finite or non-positive timings are
// all rejected with an error rather than silently producing a table that
// would later derail (or crash) model evaluation. Callers that cannot
// obtain a valid profile should fall back to selection without one (see
// core.SelectSafe).
func Load(r io.Reader) (*Table, error) {
	var jt jsonTable
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if jt.Version < 0 || jt.Version > Version {
		return nil, fmt.Errorf("profile: unsupported format version %d (this build reads up to %d)",
			jt.Version, Version)
	}
	t := &Table{Precision: jt.Precision, Machine: jt.Machine, Entries: make(map[Key]Entry)}
	for _, je := range jt.Entries {
		s, err := blocks.ParseShape(je.Shape)
		if err != nil {
			return nil, err
		}
		impl, err := blocks.ParseImpl(je.Impl)
		if err != nil {
			return nil, err
		}
		var variant blocks.Variant
		switch je.Variant {
		case "", blocks.Plain.String():
		case blocks.DU.String():
			variant = blocks.DU
		case blocks.VBR.String():
			variant = blocks.VBR
		case blocks.VBL.String():
			variant = blocks.VBL
		case blocks.SELL.String():
			variant = blocks.SELL
		default:
			return nil, fmt.Errorf("profile: unknown variant %q", je.Variant)
		}
		k := Key{Shape: s, Impl: impl, Variant: variant}
		if _, dup := t.Entries[k]; dup {
			return nil, fmt.Errorf("profile: duplicate entry for %v", k)
		}
		e := Entry{Tb: je.Tb, Nof: je.Nof}
		if err := checkEntry(k, e); err != nil {
			return nil, err
		}
		t.Entries[k] = e
	}
	return t, nil
}
