package profile

import (
	"bytes"
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/machine"
)

// testMachine returns a machine description with a synthetic bandwidth so
// profiling runs fast and deterministically enough for assertions.
func testMachine() machine.Machine {
	return machine.Machine{
		Cores: 1, L1DataBytes: 32 << 10, L2Bytes: 1 << 20, LLCBytes: 1 << 20,
		BandwidthBytesPerSec: machine.MeasureTriadBandwidth(4<<20, 2),
		TriadBytes:           4 << 20,
	}
}

// tinyOptions keeps the profiling matrices small for test speed.
func tinyOptions() Options {
	return Options{TbBytes: 8 << 10, NofBytes: 1 << 20}
}

func TestCollectCoversAllKernels(t *testing.T) {
	tab := Collect[float64](testMachine(), tinyOptions())
	if tab.Precision != "dp" {
		t.Errorf("precision = %q, want dp", tab.Precision)
	}
	// Every (shape, impl) plain kernel plus the CSR-DU decoder, VBR,
	// 1D-VBL and SELL variant kernels.
	want := len(blocks.AllShapes())*len(blocks.Impls()) + 4*len(blocks.Impls())
	if len(tab.Entries) != want {
		t.Fatalf("profile has %d entries, want %d", len(tab.Entries), want)
	}
	for _, v := range []blocks.Variant{blocks.DU, blocks.VBR, blocks.VBL, blocks.SELL} {
		for _, impl := range blocks.Impls() {
			if _, ok := tab.LookupVariant(blocks.RectShape(1, 1), impl, v); !ok {
				t.Errorf("profile missing %v %v entry", v, impl)
			}
		}
	}
	for k, e := range tab.Entries {
		if e.Tb <= 0 {
			t.Errorf("%v: Tb = %g, want positive", k, e.Tb)
		}
		if e.Tb > 1e-3 {
			t.Errorf("%v: Tb = %g s per block, implausibly slow", k, e.Tb)
		}
		if e.Nof < 0 || e.Nof > 2 {
			t.Errorf("%v: Nof = %g outside [0,2]", k, e.Nof)
		}
	}
}

func TestTbScalesWithBlockSize(t *testing.T) {
	tab := Collect[float64](testMachine(), tinyOptions())
	// An 8-element block must cost more than a 1-element block, but less
	// than 8x as much (amortised loop overheads are the whole point of
	// blocking).
	e1, _ := tab.Lookup(blocks.RectShape(1, 1), blocks.Scalar)
	e8, _ := tab.Lookup(blocks.RectShape(1, 8), blocks.Scalar)
	if e8.Tb <= e1.Tb {
		t.Errorf("Tb(1x8) = %g <= Tb(1x1) = %g", e8.Tb, e1.Tb)
	}
	if e8.Tb >= 8*e1.Tb {
		t.Errorf("Tb(1x8) = %g >= 8*Tb(1x1) = %g: no amortisation", e8.Tb, 8*e1.Tb)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := Collect[float32](testMachine(), tinyOptions())
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Precision != "sp" {
		t.Errorf("precision = %q", back.Precision)
	}
	if len(back.Entries) != len(tab.Entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back.Entries), len(tab.Entries))
	}
	for k, e := range tab.Entries {
		b := back.Entries[k]
		if b.Tb != e.Tb || b.Nof != e.Nof {
			t.Errorf("%v: round trip %+v != %+v", k, b, e)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"entries":[{"shape":"9x9","impl":"scalar"}]}`))); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"entries":[{"shape":"2x2","impl":"avx"}]}`))); err == nil {
		t.Error("invalid impl accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	m := machine.Machine{L1DataBytes: 64 << 10, L2Bytes: 4 << 20}
	o := Options{}.withDefaults(m)
	if o.TbBytes != 32<<10 {
		t.Errorf("TbBytes default = %d, want half of L1", o.TbBytes)
	}
	if o.NofBytes != 64<<20 {
		t.Errorf("NofBytes default = %d, want 64MiB", o.NofBytes)
	}
	if o.MaxNof != 2 {
		t.Errorf("MaxNof default = %g", o.MaxNof)
	}
}

func TestCollectPanicsWithoutBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Collect without bandwidth did not panic")
		}
	}()
	Collect[float64](machine.Machine{L1DataBytes: 32 << 10, L2Bytes: 1 << 20}, tinyOptions())
}
