package floats

import (
	"testing"
	"testing/quick"
)

func TestSizeOf(t *testing.T) {
	if got := SizeOf[float32](); got != 4 {
		t.Errorf("SizeOf[float32] = %d, want 4", got)
	}
	if got := SizeOf[float64](); got != 8 {
		t.Errorf("SizeOf[float64] = %d, want 8", got)
	}
}

func TestPrecisionName(t *testing.T) {
	if got := PrecisionName[float32](); got != "sp" {
		t.Errorf("PrecisionName[float32] = %q, want sp", got)
	}
	if got := PrecisionName[float64](); got != "dp" {
		t.Errorf("PrecisionName[float64] = %q, want dp", got)
	}
}

func TestRandVectorDeterministic(t *testing.T) {
	a := RandVector[float64](100, 7)
	b := RandVector[float64](100, 7)
	c := RandVector[float64](100, 8)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different vectors")
	}
	if MaxAbsDiff(a, c) == 0 {
		t.Error("different seeds produced identical vectors")
	}
	for i, v := range a {
		if v < 0 || v >= 1 {
			t.Fatalf("element %d = %g outside [0,1)", i, v)
		}
	}
}

func TestEqualWithin(t *testing.T) {
	if !EqualWithin([]float64{1, 2}, []float64{1, 2 + 1e-12}, 1e-9) {
		t.Error("near-equal vectors reported unequal")
	}
	if EqualWithin([]float64{1, 2}, []float64{1, 2.1}, 1e-9) {
		t.Error("different vectors reported equal")
	}
	if EqualWithin([]float64{1}, []float64{1, 1}, 1e-9) {
		t.Error("different lengths reported equal")
	}
	// Relative criterion: large magnitudes tolerate proportionally large
	// absolute differences.
	if !EqualWithin([]float64{1e12}, []float64{1e12 + 1}, 1e-9) {
		t.Error("relative tolerance not applied at large magnitude")
	}
}

func TestMaxAbsDiffPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	MaxAbsDiff([]float32{1}, []float32{1, 2})
}

func TestDotMatchesQuick(t *testing.T) {
	f := func(ai, bi [8]int16) bool {
		// Bounded inputs keep the reference sum exact.
		var a, b [8]float64
		for i := range ai {
			a[i] = float64(ai[i]) / 16
			b[i] = float64(bi[i]) / 16
		}
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		got := Dot(a[:], b[:])
		diff := got - want
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillAndSum(t *testing.T) {
	v := make([]float32, 10)
	Fill(v, 2.5)
	if got := Sum(v); got != 25 {
		t.Errorf("Sum after Fill = %g, want 25", got)
	}
}

func TestAddTo(t *testing.T) {
	dst := []float64{1, 2, 3}
	AddTo(dst, []float64{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Errorf("AddTo result = %v", dst)
	}
}
