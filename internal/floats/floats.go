// Package floats provides the floating-point type constraint used across
// the library together with small vector helpers shared by the storage
// formats, the kernels and the test suites.
//
// The paper evaluates every storage format in both single ("sp") and double
// ("dp") precision; this library expresses that with generics over the
// Float constraint instead of duplicating every kernel.
package floats

import (
	"math"
	"math/rand"
)

// Float is the constraint satisfied by the two precisions the paper
// evaluates: float32 (single precision, "sp") and float64 (double
// precision, "dp").
type Float interface {
	~float32 | ~float64
}

// SizeOf reports the storage size in bytes of the element type T.
// The performance models use it to compute working sets.
func SizeOf[T Float]() int {
	var v T
	switch any(v).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}

// PrecisionName reports the paper's abbreviation for the element type:
// "sp" for float32 and "dp" for float64.
func PrecisionName[T Float]() string {
	if SizeOf[T]() == 4 {
		return "sp"
	}
	return "dp"
}

// Fill sets every element of dst to v.
func Fill[T Float](dst []T, v T) {
	for i := range dst {
		dst[i] = v
	}
}

// Zero clears dst. Unlike Fill(dst, 0) the constant store compiles to a
// memclr, which matters for the per-worker first-touch zeroing of the
// output vector on the multithreaded hot path.
func Zero[T Float](dst []T) {
	for i := range dst {
		dst[i] = 0
	}
}

// RandVector returns a deterministic pseudo-random vector of length n with
// entries in [0, 1), matching the paper's randomly generated input vectors.
func RandVector[T Float](n int, seed int64) []T {
	rng := rand.New(rand.NewSource(seed))
	v := make([]T, n)
	for i := range v {
		v[i] = T(rng.Float64())
	}
	return v
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b. It panics if the lengths differ, since comparing vectors of
// different shapes is always a caller bug.
func MaxAbsDiff[T Float](a, b []T) float64 {
	if len(a) != len(b) {
		panic("floats: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// EqualWithin reports whether a and b are element-wise equal within tol,
// using a mixed absolute/relative criterion so that it behaves sensibly for
// both tiny and large magnitudes.
func EqualWithin[T Float](a, b []T, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := float64(a[i]), float64(b[i])
		d := math.Abs(av - bv)
		scale := math.Max(math.Abs(av), math.Abs(bv))
		if d > tol*math.Max(1, scale) {
			return false
		}
	}
	return true
}

// DefaultTol returns a comparison tolerance appropriate for the precision
// of T: single-precision accumulations lose bits much faster than double.
func DefaultTol[T Float]() float64 {
	if SizeOf[T]() == 4 {
		return 1e-3
	}
	return 1e-9
}

// Dot returns the inner product of a and b, accumulating in float64 for
// use as a test oracle. It panics if the lengths differ.
func Dot[T Float](a, b []T) float64 {
	if len(a) != len(b) {
		panic("floats: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Sum returns the float64 sum of v.
func Sum[T Float](v []T) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// AddTo accumulates src into dst element-wise. It panics if the lengths
// differ.
func AddTo[T Float](dst, src []T) {
	if len(dst) != len(src) {
		panic("floats: AddTo length mismatch")
	}
	for i := range src {
		dst[i] += src[i]
	}
}
