// Package sell implements the SELL-C-σ (sorted sliced ELLPACK) format.
//
// Rows are sorted by descending length inside sorting scopes of σ rows
// (σ = 1 keeps the natural order, σ = n sorts the whole matrix), then
// grouped into slices of C consecutive sorted rows. Each slice is padded
// to its own maximum row length and stored column-major: element j of
// slice lane i lives at val[sliceOff[s] + j*C + i], so the C lanes of a
// slice advance in lockstep like vector lanes. Padding entries carry
// value 0 and column 0, contributing exact zeros. A row permutation
// (perm[lane position] = original row, as in internal/reorder) maps each
// lane back to its row; the multiply scatters lane results through it,
// so the output is bit-for-bit identical to scalar CSR — σ-sorting
// changes storage, never results.
//
// Blocked formats lose on scatter-dominated matrices (uniform random,
// power-law graphs, LP constraint systems) because nonzeros rarely sit
// adjacent; SELL-C-σ needs no adjacency at all. Its price is padding:
// C-row slices cost (maxlen - len) stored zeros per short row, which
// σ-sorting shrinks by grouping rows of similar length into the same
// slice. The models price the real padded stream via StreamBytes, which
// matches MatrixBytes byte for byte.
//
// Sorting scopes are rounded up to a multiple of C so no slice crosses a
// scope boundary, and RowAlign is the scope size: every parallel range
// covers whole scopes, so the permuted scatter of a slice always lands
// inside the worker's own range and the MulRange concurrency contract
// holds unchanged.
package sell

import (
	"fmt"
	"sort"

	"blockspmv/internal/blocks"
	"blockspmv/internal/floats"
	"blockspmv/internal/formats"
	"blockspmv/internal/idx"
	"blockspmv/internal/kernels"
	"blockspmv/internal/mat"
	"blockspmv/internal/reorder"
)

// Mat is a sparse matrix in SELL-C-σ format, generic over the value type
// and the stored column-index width.
type Mat[T floats.Float, I idx.Index] struct {
	rows, cols int
	chunk      int // C: slice height
	sigma      int // requested sorting scope; <= 0 means the whole matrix
	scope      int // effective scope: a multiple of chunk (see RowAlign)
	impl       blocks.Impl

	val      []T     // padded scalars, column-major per slice
	colInd   []I     // same layout as val; padding stores column 0
	sliceOff []int64 // len slices+1, scalar offsets into val/colInd
	perm     reorder.Permutation // perm[lane position] = original row

	nnz int64

	kern     kernels.SellSliceKernelIx[T, I]      // resolved at construction
	genMulti kernels.SellSliceMultiKernelIx[T, I] // fallback for ungenerated chunks
}

// New converts a finalized coordinate matrix to SELL-C-σ with the
// paper's baseline 4-byte column indices. chunk is the slice height C;
// sigma the sorting scope in rows (1 keeps the natural row order, any
// value <= 0 or >= Rows() sorts the whole matrix).
func New[T floats.Float](m *mat.COO[T], chunk, sigma int, impl blocks.Impl) *Mat[T, int32] {
	return NewIx[T, int32](m, chunk, sigma, impl)
}

// NewCompact converts to SELL-C-σ with the narrowest index width able
// to address the matrix columns.
func NewCompact[T floats.Float](m *mat.COO[T], chunk, sigma int, impl blocks.Impl) formats.Instance[T] {
	switch idx.FitsCols(m.Cols()) {
	case idx.W8:
		return NewIx[T, uint8](m, chunk, sigma, impl)
	case idx.W16:
		return NewIx[T, uint16](m, chunk, sigma, impl)
	default:
		return NewIx[T, int32](m, chunk, sigma, impl)
	}
}

// NewIx converts a finalized coordinate matrix to SELL-C-σ with column
// indices stored as type I. It panics when the matrix is wider than the
// index type can address.
func NewIx[T floats.Float, I idx.Index](m *mat.COO[T], chunk, sigma int, impl blocks.Impl) *Mat[T, I] {
	if !m.Finalized() {
		panic("sell: matrix must be finalized")
	}
	if chunk < 1 {
		panic(fmt.Sprintf("sell: chunk height %d (want >= 1)", chunk))
	}
	if b := idx.Bytes[I](); b < 4 && m.Cols() > 1<<(8*b) {
		panic(fmt.Sprintf("sell: %d columns do not fit %s indices", m.Cols(), idx.Of[I]()))
	}
	rows, cols := m.Rows(), m.Cols()
	lens := m.RowLengths()
	perm, scope := scopePerm(lens, chunk, sigma)

	a := &Mat[T, I]{
		rows: rows, cols: cols,
		chunk: chunk, sigma: sigma, scope: scope,
		impl: impl,
		perm: perm,
		nnz:  int64(m.NNZ()),
	}

	slices := (rows + chunk - 1) / chunk
	a.sliceOff = make([]int64, slices+1)
	for s := 0; s < slices; s++ {
		// The slice width is its longest row; σ-sorted lane 0 is the
		// longest only within a scope, so take the max explicitly.
		width := 0
		for i := s * chunk; i < (s+1)*chunk && i < rows; i++ {
			if l := lens[perm[i]]; l > width {
				width = l
			}
		}
		a.sliceOff[s+1] = a.sliceOff[s] + int64(width*chunk)
	}
	a.val = make([]T, a.sliceOff[slices])
	a.colInd = make([]I, a.sliceOff[slices])

	rowPtr := make([]int64, rows+1)
	for r := 0; r < rows; r++ {
		rowPtr[r+1] = rowPtr[r] + int64(lens[r])
	}
	entries := m.Entries()
	for pos := 0; pos < rows; pos++ {
		s, lane := pos/chunk, pos%chunk
		off := a.sliceOff[s]
		r := int(perm[pos])
		for j, e := 0, rowPtr[r]; e < rowPtr[r+1]; j, e = j+1, e+1 {
			a.val[off+int64(j*chunk+lane)] = entries[e].Val
			a.colInd[off+int64(j*chunk+lane)] = I(entries[e].Col)
		}
	}

	a.resolveKernels()
	return a
}

// scopePerm builds the σ-sort permutation: a stable descending-length
// sort of the row indices inside each sorting scope. The scope is sigma
// rounded up to a multiple of chunk (so slices never cross scopes);
// sigma <= 1 keeps the identity order with a one-slice scope.
func scopePerm(lens []int, chunk, sigma int) (reorder.Permutation, int) {
	rows := len(lens)
	perm := make(reorder.Permutation, rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	scope := chunk
	if sigma != 1 {
		s := sigma
		if s <= 0 || s > rows {
			s = rows
		}
		if s > 1 {
			scope = (s + chunk - 1) / chunk * chunk
			for w0 := 0; w0 < rows; w0 += scope {
				w1 := min(w0+scope, rows)
				win := perm[w0:w1]
				sort.SliceStable(win, func(a, b int) bool { return lens[win[a]] > lens[win[b]] })
			}
		}
	}
	return perm, scope
}

// resolveKernels binds the generated slice kernels for the chunk height
// and impl, falling back to the loop-based generics for chunk heights
// outside the generated set.
func (a *Mat[T, I]) resolveKernels() {
	a.kern = kernels.SellIx[T, I](a.chunk, a.impl)
	if a.kern == nil {
		a.kern = kernels.SellGenericIx[T, I](a.chunk)
	}
	a.genMulti = kernels.SellGenericMultiIx[T, I](a.chunk)
}

// Chunk returns the slice height C.
func (a *Mat[T, I]) Chunk() int { return a.chunk }

// Scope returns the effective sorting scope: the requested σ rounded up
// to a multiple of C (and equal to RowAlign, capped at the row count).
func (a *Mat[T, I]) Scope() int { return a.scope }

// Slices returns the number of slices, ceil(rows/C).
func (a *Mat[T, I]) Slices() int { return len(a.sliceOff) - 1 }

// SliceWidth returns the padded width (longest row) of slice s.
func (a *Mat[T, I]) SliceWidth(s int) int {
	return int(a.sliceOff[s+1]-a.sliceOff[s]) / a.chunk
}

// Perm returns the row permutation (perm[lane position] = original
// row). The slice is the instance's own state: callers must not modify
// it.
func (a *Mat[T, I]) Perm() reorder.Permutation { return a.perm }

// Name implements formats.Instance, e.g. "SELL-8-n/ix16/simd": slice
// height, sorting scope ("n" for whole-matrix sorting), index width and
// kernel class.
func (a *Mat[T, I]) Name() string {
	n := fmt.Sprintf("SELL-%d-%s", a.chunk, SigmaName(a.sigma))
	n += idx.Of[I]().Suffix()
	if a.impl == blocks.Vector {
		n += "/simd"
	}
	return n
}

// SigmaName renders a sorting-scope parameter for format names: "n" for
// the whole-matrix sentinel (sigma <= 0), the decimal value otherwise.
func SigmaName(sigma int) string {
	if sigma <= 0 {
		return "n"
	}
	return fmt.Sprintf("%d", sigma)
}

// Rows implements formats.Instance.
func (a *Mat[T, I]) Rows() int { return a.rows }

// Cols implements formats.Instance.
func (a *Mat[T, I]) Cols() int { return a.cols }

// NNZ implements formats.Instance.
func (a *Mat[T, I]) NNZ() int64 { return a.nnz }

// StoredScalars implements formats.Instance: every stored value
// including the slice padding (short rows padded to the slice width,
// phantom lanes of a partial final slice padded to full height).
func (a *Mat[T, I]) StoredScalars() int64 { return int64(len(a.val)) }

// MatrixBytes implements formats.Instance: the padded value and column
// arrays, the slice offsets and the row permutation. Construction-free
// pricing via StreamBytes matches this byte for byte.
func (a *Mat[T, I]) MatrixBytes() int64 {
	return int64(len(a.val))*int64(floats.SizeOf[T]()) +
		int64(len(a.colInd))*int64(idx.Bytes[I]()) +
		int64(len(a.sliceOff))*8 +
		int64(len(a.perm))*4
}

// Components implements formats.Instance. Slices have no fixed block
// shape, so the component reports the degenerate 1x1 shape with Blocks
// equal to the stored scalars — the per-scalar normalization the
// profiling layer uses for the SELL kernel variant, mirroring VBR/VBL.
func (a *Mat[T, I]) Components() []formats.Component {
	return []formats.Component{{
		Shape:   blocks.RectShape(1, 1),
		Impl:    a.impl,
		Blocks:  a.StoredScalars(),
		WSBytes: a.MatrixBytes(),
		Variant: blocks.SELL,
	}}
}

// RowAlign implements formats.Instance: the sorting scope (capped at
// the row count). Ranges covering whole scopes contain every scatter
// target of the slices inside them, because the σ-sort permutes rows
// only within a scope.
func (a *Mat[T, I]) RowAlign() int {
	return max(1, min(a.scope, a.rows))
}

// RowWeights implements formats.Instance: each row weighs its slice
// width (its stored scalars including padding). The phantom lanes of a
// partial final slice are charged to that slice's last real row so the
// weights sum to StoredScalars; ranges cannot split inside a slice, so
// the attribution does not affect balancing.
func (a *Mat[T, I]) RowWeights() []int64 {
	w := make([]int64, a.rows)
	for pos := 0; pos < a.rows; pos++ {
		s := pos / a.chunk
		w[a.perm[pos]] = int64(a.SliceWidth(s))
	}
	if a.rows > 0 {
		last := a.Slices() - 1
		phantom := (last+1)*a.chunk - a.rows
		w[a.perm[a.rows-1]] += int64(phantom * a.SliceWidth(last))
	}
	return w
}

// Mul implements formats.Instance.
func (a *Mat[T, I]) Mul(x, y []T) {
	formats.CheckDims[T](a, x, y)
	floats.Fill(y, 0)
	a.MulRange(x, y, 0, a.rows)
}

// MulRange implements formats.Instance. It walks the slices covering
// [r0, r1) and scatters each slice's lane results through the row
// permutation; aligned boundaries cover whole sorting scopes, so every
// target row lies inside [r0, r1).
func (a *Mat[T, I]) MulRange(x, y []T, r0, r1 int) {
	if r0 < 0 || r1 > a.rows || r0 > r1 {
		panic(fmt.Sprintf("sell: MulRange [%d,%d) out of bounds", r0, r1))
	}
	c := a.chunk
	kern := a.kern
	for s, s1 := r0/c, (r1+c-1)/c; s < s1; s++ {
		off, end := a.sliceOff[s], a.sliceOff[s+1]
		base := s * c
		h := min(c, a.rows-base)
		kern(a.val[off:end], a.colInd[off:end], int(end-off)/c, x, y, a.perm[base:base+h])
	}
}

// MulRangeMulti implements formats.Instance.
func (a *Mat[T, I]) MulRangeMulti(x, y []T, k, r0, r1 int) {
	switch k {
	case 0:
		return
	case 1:
		a.MulRange(x, y, r0, r1)
		return
	}
	if r0 < 0 || r1 > a.rows || r0 > r1 {
		panic(fmt.Sprintf("sell: MulRangeMulti [%d,%d) out of bounds", r0, r1))
	}
	kern := kernels.SellMultiIx[T, I](a.chunk, a.impl, k)
	if kern == nil {
		kern = a.genMulti
	}
	c := a.chunk
	for s, s1 := r0/c, (r1+c-1)/c; s < s1; s++ {
		off, end := a.sliceOff[s], a.sliceOff[s+1]
		base := s * c
		h := min(c, a.rows-base)
		kern(a.val[off:end], a.colInd[off:end], int(end-off)/c, x, y, a.perm[base:base+h], k)
	}
}

// WithImpl implements formats.Instance: a shallow copy sharing the
// arrays, with the kernels re-resolved for the new class.
func (a *Mat[T, I]) WithImpl(impl blocks.Impl) formats.Instance[T] {
	b := *a
	b.impl = impl
	b.resolveKernels()
	return &b
}

// DecodeStream reconstructs the matrix from the SELL storage alone: it
// walks every lane, inverts the permutation and keeps the entries with
// nonzero values (padding stores exact zeros, so a matrix whose
// original entries are nonzero round-trips; explicitly stored zero
// values are indistinguishable from padding and are dropped). The fuzz
// harness uses it to prove the padded stream still encodes the matrix.
func (a *Mat[T, I]) DecodeStream() *mat.COO[T] {
	m := mat.New[T](a.rows, a.cols)
	for pos := 0; pos < a.rows; pos++ {
		s, lane := pos/a.chunk, pos%a.chunk
		off, width := a.sliceOff[s], a.SliceWidth(s)
		r := a.perm[pos]
		for j := 0; j < width; j++ {
			if v := a.val[off+int64(j*a.chunk+lane)]; v != 0 {
				m.Add(r, int32(a.colInd[off+int64(j*a.chunk+lane)]), v)
			}
		}
	}
	m.Finalize()
	return m
}

// Layout is the construction-free padded-layout summary of a SELL-C-σ
// build over a sparsity pattern: everything pricing needs, computed
// without materializing the format.
type Layout struct {
	// Padded is the stored scalar count including padding: the sum over
	// slices of C times the slice's longest row.
	Padded int64
	// Slices is the slice count, ceil(rows/C).
	Slices int
}

// LayoutOf computes the padded layout a NewIx build with the same chunk
// and sigma would produce, from the pattern alone.
func LayoutOf(p *mat.Pattern, chunk, sigma int) Layout {
	lens := make([]int, p.Rows)
	for r := 0; r < p.Rows; r++ {
		lens[r] = int(p.RowPtr[r+1] - p.RowPtr[r])
	}
	perm, _ := scopePerm(lens, chunk, sigma)
	l := Layout{Slices: (p.Rows + chunk - 1) / chunk}
	for s := 0; s < l.Slices; s++ {
		width := 0
		for i := s * chunk; i < (s+1)*chunk && i < p.Rows; i++ {
			if w := lens[perm[i]]; w > width {
				width = w
			}
		}
		l.Padded += int64(width * chunk)
	}
	return l
}

// StreamBytes returns the exact MatrixBytes of the layout for a matrix
// with rows rows, valSize-byte values and idxBytes-byte column indices:
// padded values and indices, slice offsets (8 bytes each) and the row
// permutation (4 bytes per row).
func (l Layout) StreamBytes(rows, valSize, idxBytes int) int64 {
	return l.Padded*int64(valSize+idxBytes) + int64(l.Slices+1)*8 + int64(rows)*4
}

// StreamBytes prices a SELL-C-σ build over a pattern without
// constructing it; the result matches the built instance's MatrixBytes
// byte for byte (TestSELLStreamBytesExact audits this).
func StreamBytes(p *mat.Pattern, chunk, sigma, valSize, idxBytes int) int64 {
	return LayoutOf(p, chunk, sigma).StreamBytes(p.Rows, valSize, idxBytes)
}

var (
	_ formats.Instance[float64] = (*Mat[float64, int32])(nil)
	_ formats.Instance[float64] = (*Mat[float64, uint16])(nil)
	_ formats.Instance[float64] = (*Mat[float64, uint8])(nil)
	_ formats.Instance[float32] = (*Mat[float32, int32])(nil)
)
