package sell_test

import (
	"fmt"
	"math/rand"
	"testing"

	"blockspmv/internal/blocks"
	"blockspmv/internal/conformance"
	"blockspmv/internal/csr"
	"blockspmv/internal/floats"
	"blockspmv/internal/mat"
	"blockspmv/internal/sell"
	"blockspmv/internal/testmat"
)

// params is the (C, σ) grid the unit tests sweep: the selection space's
// C values crossed with natural order, one-slice sorting, a mid-size
// scope and whole-matrix sorting.
var params = []struct{ chunk, sigma int }{
	{4, 1}, {4, 0},
	{8, 1}, {8, 8}, {8, 64}, {8, 0},
	{32, 1}, {32, 0},
	{3, 0}, // no generated kernel: exercises the generic fallback
}

func TestConformance(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		for _, p := range params {
			for _, impl := range blocks.Impls() {
				t.Run(fmt.Sprintf("%s/C%d-s%d/%v", name, p.chunk, p.sigma, impl), func(t *testing.T) {
					conformance.Check(t, m, sell.New(m, p.chunk, p.sigma, impl))
				})
			}
		}
	}
}

func TestConformanceSingle(t *testing.T) {
	for name, m := range testmat.Corpus[float32]() {
		for _, p := range params {
			t.Run(fmt.Sprintf("%s/C%d-s%d", name, p.chunk, p.sigma), func(t *testing.T) {
				conformance.Check(t, m, sell.New(m, p.chunk, p.sigma, blocks.Scalar))
			})
		}
	}
}

func TestConformanceNarrowIndices(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		for _, p := range params {
			t.Run(fmt.Sprintf("%s/C%d-s%d", name, p.chunk, p.sigma), func(t *testing.T) {
				if m.Cols() <= 1<<16 {
					conformance.Check(t, m, sell.NewIx[float64, uint16](m, p.chunk, p.sigma, blocks.Scalar))
				}
				if m.Cols() <= 1<<8 {
					conformance.Check(t, m, sell.NewIx[float64, uint8](m, p.chunk, p.sigma, blocks.Vector))
				}
				conformance.Check(t, m, sell.NewCompact(m, p.chunk, p.sigma, blocks.Scalar))
			})
		}
	}
}

// TestBitIdenticalToCSR checks the headline numerical contract: per lane
// the scalar SELL kernels accumulate j-ascending with one accumulator,
// exactly the scalar CSR order, and padding appends exact zeros — so
// Mul must equal CSR bit for bit, for every σ (sorting permutes storage,
// not arithmetic).
func TestBitIdenticalToCSR(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		ref := csr.FromCOO(m, blocks.Scalar)
		x := make([]float64, m.Cols())
		rng := rand.New(rand.NewSource(7))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, m.Rows())
		ref.Mul(x, want)
		for _, p := range params {
			a := sell.New(m, p.chunk, p.sigma, blocks.Scalar)
			got := make([]float64, m.Rows())
			a.Mul(x, got)
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("%s %s: y[%d] = %v, CSR %v (must be bit-identical)",
						name, a.Name(), r, got[r], want[r])
				}
			}
		}
	}
}

// TestSELLStreamBytesExact is the golden byte audit of the ISSUE's
// acceptance criteria: the construction-free StreamBytes over the
// pattern must equal the built instance's MatrixBytes byte for byte,
// for every (C, σ) and index width, and LayoutOf.Padded must equal the
// instance's StoredScalars.
func TestSELLStreamBytesExact(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		p := mat.PatternOf(m)
		for _, pr := range params {
			l := sell.LayoutOf(p, pr.chunk, pr.sigma)
			check := func(inst interface {
				MatrixBytes() int64
				StoredScalars() int64
				Name() string
			}, idxBytes int) {
				if got := l.StreamBytes(p.Rows, 8, idxBytes); got != inst.MatrixBytes() {
					t.Errorf("%s %s: StreamBytes %d != MatrixBytes %d",
						name, inst.Name(), got, inst.MatrixBytes())
				}
				if l.Padded != inst.StoredScalars() {
					t.Errorf("%s %s: Layout.Padded %d != StoredScalars %d",
						name, inst.Name(), l.Padded, inst.StoredScalars())
				}
			}
			check(sell.New(m, pr.chunk, pr.sigma, blocks.Scalar), 4)
			if m.Cols() <= 1<<16 {
				check(sell.NewIx[float64, uint16](m, pr.chunk, pr.sigma, blocks.Scalar), 2)
			}
			if m.Cols() <= 1<<8 {
				check(sell.NewIx[float64, uint8](m, pr.chunk, pr.sigma, blocks.Scalar), 1)
			}
		}
	}
}

// TestSELLPaddingNeverWorseThanELL is the σ-sort monotonicity property:
// whole-matrix sorting can only shrink (never grow) the padded scalar
// count relative to the unsorted σ=1 layout, at every chunk height.
// Sorting gathers rows of similar length into the same slice, so each
// slice's max-length padding target is closer to its members.
func TestSELLPaddingNeverWorseThanELL(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		p := mat.PatternOf(m)
		for _, c := range []int{4, 8, 32} {
			unsorted := sell.LayoutOf(p, c, 1)
			sorted := sell.LayoutOf(p, c, 0)
			if sorted.Padded > unsorted.Padded {
				t.Errorf("%s C=%d: σ=n padded %d > σ=1 padded %d",
					name, c, sorted.Padded, unsorted.Padded)
			}
			// Intermediate scopes sit between the extremes on the same
			// argument, window by window.
			mid := sell.LayoutOf(p, c, 4*c)
			if sorted.Padded > mid.Padded || mid.Padded > unsorted.Padded {
				t.Errorf("%s C=%d: padded not monotone in σ: n=%d σ=%d: %d 1=%d",
					name, c, sorted.Padded, 4*c, mid.Padded, unsorted.Padded)
			}
		}
	}
}

// TestSigmaCEqualsSigmaOne documents the honest caveat: sorting within a
// scope of exactly one slice (σ = C) cannot change any slice's max
// length, so the padded layout is byte-identical to σ=1. The bench
// sweep includes σ=C anyway to show the flat line.
func TestSigmaCEqualsSigmaOne(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		p := mat.PatternOf(m)
		for _, c := range []int{4, 8, 32} {
			if a, b := sell.LayoutOf(p, c, 1), sell.LayoutOf(p, c, c); a != b {
				t.Errorf("%s C=%d: σ=C layout %+v differs from σ=1 %+v", name, c, b, a)
			}
		}
	}
}

func TestNames(t *testing.T) {
	m := testmat.Random[float64](40, 40, 0.1, 1)
	cases := []struct {
		got, want string
	}{
		{sell.New(m, 8, 1, blocks.Scalar).Name(), "SELL-8-1"},
		{sell.New(m, 8, 0, blocks.Scalar).Name(), "SELL-8-n"},
		{sell.New(m, 4, 64, blocks.Vector).Name(), "SELL-4-64/simd"},
		{sell.NewIx[float64, uint16](m, 32, 0, blocks.Scalar).Name(), "SELL-32-n/ix16"},
		{sell.NewIx[float64, uint8](m, 8, 8, blocks.Vector).Name(), "SELL-8-8/ix8/simd"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("Name = %q, want %q", c.got, c.want)
		}
	}
}

func TestScopeRounding(t *testing.T) {
	m := testmat.Random[float64](100, 50, 0.1, 2)
	cases := []struct {
		chunk, sigma, wantScope, wantAlign int
	}{
		{8, 1, 8, 8},       // identity order, slice-sized scope
		{8, 8, 8, 8},       // one-slice scope
		{8, 12, 16, 16},    // rounded up to a chunk multiple
		{8, 0, 104, 100},   // whole matrix, align capped at rows
		{8, 1000, 104, 100}, // σ > rows clamps to whole matrix
	}
	for _, c := range cases {
		a := sell.New(m, c.chunk, c.sigma, blocks.Scalar)
		if a.Scope() != c.wantScope || a.RowAlign() != c.wantAlign {
			t.Errorf("C=%d σ=%d: scope %d align %d, want %d/%d",
				c.chunk, c.sigma, a.Scope(), a.RowAlign(), c.wantScope, c.wantAlign)
		}
	}
}

func TestDecodeStreamRoundTrip(t *testing.T) {
	for name, m := range testmat.Corpus[float64]() {
		for _, p := range params {
			a := sell.New(m, p.chunk, p.sigma, blocks.Scalar)
			got := a.DecodeStream()
			if err := equalCOO(m, got); err != nil {
				t.Errorf("%s C=%d σ=%d: decode mismatch: %v", name, p.chunk, p.sigma, err)
			}
		}
	}
}

func equalCOO[T floats.Float](want, got *mat.COO[T]) error {
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		return fmt.Errorf("dims %dx%d != %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	we, ge := want.Entries(), got.Entries()
	if len(we) != len(ge) {
		return fmt.Errorf("%d entries, want %d", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			return fmt.Errorf("entry %d: %+v != %+v", i, ge[i], we[i])
		}
	}
	return nil
}

// FuzzSELLConstruction builds SELL-C-σ over arbitrary patterns with
// strictly nonzero values and checks the structural invariants: the
// permutation is a bijection on rows, every row fits its slice's width,
// the padded stream decodes back to the original matrix (so padded
// lanes contribute nothing), the construction-free layout matches the
// instance exactly, and Mul is bit-identical to CSR.
func FuzzSELLConstruction(f *testing.F) {
	f.Add([]byte{8, 8, 0xAB, 0xCD, 0xEF, 0x01}, uint8(8), uint8(0))
	f.Add([]byte{1, 1, 0xFF}, uint8(1), uint8(1))
	f.Add([]byte{16, 4, 0x00, 0x12, 0x7F}, uint8(4), uint8(6))
	f.Add([]byte{31, 2, 0xF0, 0x0F, 0x55}, uint8(32), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, chunkB, sigmaB uint8) {
		if len(data) < 2 {
			return
		}
		rows := int(data[0]%32) + 1
		cols := int(data[1]%32) + 1
		chunk := int(chunkB%32) + 1
		sigma := int(sigmaB) - 1 // -1..254: includes the global sentinel
		m := mat.New[float64](rows, cols)
		bit := 0
		nnz := 0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				byteIdx := 2 + bit/8
				if byteIdx < len(data) && data[byteIdx]&(1<<(bit%8)) != 0 {
					m.Add(int32(r), int32(c), float64(bit%13)+1) // nonzero
					nnz++
				}
				bit++
			}
		}
		m.Finalize()
		a := sell.New(m, chunk, sigma, blocks.Scalar)

		// Permutation bijection.
		seen := make([]bool, rows)
		for _, r := range a.Perm() {
			if r < 0 || int(r) >= rows || seen[r] {
				t.Fatalf("perm not a bijection: row %d", r)
			}
			seen[r] = true
		}

		// Every row's length fits its slice width, and the widths
		// reproduce the construction-free layout.
		lens := m.RowLengths()
		var padded int64
		for s := 0; s < a.Slices(); s++ {
			w := a.SliceWidth(s)
			padded += int64(w * chunk)
			for i := s * chunk; i < (s+1)*chunk && i < rows; i++ {
				if l := lens[a.Perm()[i]]; l > w {
					t.Fatalf("slice %d width %d < row %d length %d", s, w, a.Perm()[i], l)
				}
			}
		}
		if padded != a.StoredScalars() {
			t.Fatalf("slice widths sum to %d scalars, StoredScalars %d", padded, a.StoredScalars())
		}
		l := sell.LayoutOf(mat.PatternOf(m), chunk, sigma)
		if l.Padded != padded || l.StreamBytes(rows, 8, 4) != a.MatrixBytes() {
			t.Fatalf("layout %+v disagrees with instance (padded %d, bytes %d)",
				l, padded, a.MatrixBytes())
		}

		// The stream decodes back to the matrix: padded lanes are
		// invisible.
		if err := equalCOO(m, a.DecodeStream()); err != nil {
			t.Fatalf("decode: %v", err)
		}

		// Bit-identical to CSR.
		x := make([]float64, cols)
		for i := range x {
			x[i] = float64(i%7) - 3.14
		}
		want := make([]float64, rows)
		csr.FromCOO(m, blocks.Scalar).Mul(x, want)
		got := make([]float64, rows)
		a.Mul(x, got)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("y[%d] = %v, CSR %v", r, got[r], want[r])
			}
		}
	})
}
