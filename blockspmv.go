// Package blockspmv is a library of blocked sparse matrix-vector
// multiplication (SpMV) kernels and of performance models that select the
// best storage format and block shape for a given matrix, reproducing
//
//	V. Karakasis, G. Goumas, N. Koziris:
//	"Performance Models for Blocked Sparse Matrix-Vector Multiplication
//	Kernels", ICPP 2009.
//
// # Storage formats
//
// The library implements the paper's five blocked storage formats next to
// the CSR baseline: BCSR (aligned fixed-size r x c blocks with zero
// padding), BCSR-DEC (full blocks + CSR remainder), BCSD (aligned diagonal
// blocks with padding), BCSD-DEC, and 1D-VBL (variable-length horizontal
// blocks); VBR is included for completeness of the format survey. Every
// fixed block shape with at most eight elements has a dedicated unrolled
// kernel in a scalar and a lane-structured "simd" variant, in both single
// and double precision via generics.
//
// # Performance models
//
// Three models predict SpMV execution time and drive format selection: MEM
// (pure streaming, ws/BW), MEMCOMP (adds the profiled computational cost
// of each block) and OVERLAP (scales the computational part by a profiled
// non-overlapping factor that accounts for hardware prefetching). Use
// DetectMachine and CollectProfile once per host, then Autotune per
// matrix.
//
// # Quick start
//
//	m := blockspmv.NewMatrix[float64](rows, cols)
//	m.Add(i, j, v) // ... assemble
//	m.Finalize()
//
//	mach := blockspmv.DetectMachine()
//	prof := blockspmv.CollectProfile[float64](mach)
//	format, pred := blockspmv.Autotune(m, mach, prof)
//	format.Mul(x, y) // y = A*x with the selected format
//
// The experiment harness reproducing the paper's tables and figures lives
// in cmd/spmvbench; see DESIGN.md and EXPERIMENTS.md.
package blockspmv

import (
	"io"

	"blockspmv/internal/bcsd"
	"blockspmv/internal/bcsr"
	"blockspmv/internal/blocks"
	"blockspmv/internal/core"
	"blockspmv/internal/csr"
	"blockspmv/internal/csrdu"
	"blockspmv/internal/dcsr"
	"blockspmv/internal/floats"
	"blockspmv/internal/formats"
	"blockspmv/internal/machine"
	"blockspmv/internal/mat"
	"blockspmv/internal/multidec"
	"blockspmv/internal/overlay"
	"blockspmv/internal/parallel"
	"blockspmv/internal/profile"
	"blockspmv/internal/reorder"
	"blockspmv/internal/sell"
	"blockspmv/internal/solver"
	"blockspmv/internal/ubcsr"
	"blockspmv/internal/vbl"
	"blockspmv/internal/vbr"
)

// Float constrains the element types: float32 ("sp") or float64 ("dp").
type Float = floats.Float

// Matrix is a sparse matrix under assembly, in coordinate (triplet) form.
// Add entries, then Finalize before converting to a multiply-ready format.
type Matrix[T Float] = mat.COO[T]

// Entry is a single coordinate-form element.
type Entry[T Float] = mat.Entry[T]

// Format is a multiply-ready sparse matrix in some storage format. Mul
// computes y = A*x; see the formats package documentation for the full
// contract (row-range multiplies, working-set accounting, decomposition
// components).
type Format[T Float] = formats.Instance[T]

// Shape identifies a fixed block geometry: r x c rectangles for the BCSR
// family, length-b diagonals for the BCSD family.
type Shape = blocks.Shape

// Impl selects the kernel implementation class: Scalar or Vector ("simd").
type Impl = blocks.Impl

// Implementation classes.
const (
	Scalar = blocks.Scalar
	Vector = blocks.Vector
)

// RectShape returns the r x c rectangular block shape. Valid shapes have
// at most MaxBlockElems elements.
func RectShape(r, c int) Shape { return blocks.RectShape(r, c) }

// DiagShape returns the diagonal block shape of length b (2..8).
func DiagShape(b int) Shape { return blocks.DiagShape(b) }

// MaxBlockElems is the largest supported block, 8 elements, following the
// paper's finding that larger blocks never beat CSR.
const MaxBlockElems = blocks.MaxBlockElems

// NewMatrix returns an empty rows x cols matrix for assembly.
func NewMatrix[T Float](rows, cols int) *Matrix[T] { return mat.New[T](rows, cols) }

// ReadMatrixMarket parses a matrix in Matrix Market exchange format
// (coordinate or array; real, integer or pattern; general, symmetric or
// skew-symmetric). It never panics on malformed input: forged sizes,
// floods past the declared entry count and truncated streams return
// errors. It applies no size limits; use ReadMatrixMarketLimited for
// untrusted streams.
func ReadMatrixMarket[T Float](r io.Reader) (*Matrix[T], error) {
	return mat.ReadMatrixMarket[T](r)
}

// MatrixMarketLimits bounds the declared sizes ReadMatrixMarketLimited
// accepts; zero fields mean unbounded.
type MatrixMarketLimits = mat.Limits

// ErrMatrixMarketLimit marks a stream whose declared size exceeds the
// caller's MatrixMarketLimits.
var ErrMatrixMarketLimit = mat.ErrLimit

// ReadMatrixMarketLimited is ReadMatrixMarket with declared-size limits,
// checked against the header before anything is allocated. Streams over
// a limit fail with an error wrapping ErrMatrixMarketLimit.
func ReadMatrixMarketLimited[T Float](r io.Reader, lim MatrixMarketLimits) (*Matrix[T], error) {
	return mat.ReadMatrixMarketLimited[T](r, lim)
}

// WriteMatrixMarket writes a finalized matrix in Matrix Market coordinate
// real general format.
func WriteMatrixMarket[T Float](w io.Writer, m *Matrix[T]) error {
	return mat.WriteMatrixMarket(w, m)
}

// NewCSR converts a finalized matrix to the CSR baseline format.
func NewCSR[T Float](m *Matrix[T], impl Impl) Format[T] { return csr.FromCOO(m, impl) }

// NewCSRCompact converts a finalized matrix to CSR with the narrowest
// column-index type its width admits (uint8 up to 256 columns, uint16 up
// to 65536), shrinking the index stream the MEM model charges for by up
// to 4x. Wide matrices fall back to the plain 4-byte layout.
func NewCSRCompact[T Float](m *Matrix[T], impl Impl) Format[T] { return csr.NewCompact(m, impl) }

// NewCSRDU converts a finalized matrix to CSR-DU: column indices stored
// as per-row delta units of 1-, 2- or 4-byte gaps behind 2-byte unit
// headers (Kourtis, Goumas & Koziris). Locally dense matrices of any
// width compress their index stream to about one byte per nonzero.
func NewCSRDU[T Float](m *Matrix[T], impl Impl) Format[T] { return csrdu.New(m, impl) }

// NewBCSR converts a finalized matrix to BCSR with aligned, zero-padded
// r x c blocks (r*c <= MaxBlockElems).
func NewBCSR[T Float](m *Matrix[T], r, c int, impl Impl) Format[T] {
	return bcsr.New(m, r, c, impl)
}

// NewBCSRCompact is NewBCSR with the narrowest block-column-index type
// the matrix width admits; wide matrices fall back to the plain layout.
func NewBCSRCompact[T Float](m *Matrix[T], r, c int, impl Impl) Format[T] {
	return bcsr.NewCompact(m, r, c, impl)
}

// NewBCSRDec converts a finalized matrix to BCSR-DEC: completely dense
// aligned r x c blocks without padding plus a CSR remainder.
func NewBCSRDec[T Float](m *Matrix[T], r, c int, impl Impl) Format[T] {
	return bcsr.NewDecomposed(m, r, c, impl)
}

// NewUBCSR converts a finalized matrix to column-unaligned BCSR (Vuduc &
// Moon): r x c blocks anchored greedily at arbitrary columns, trading
// BCSR's alignment (and its vectorization friendliness) for less padding.
func NewUBCSR[T Float](m *Matrix[T], r, c int, impl Impl) Format[T] {
	return ubcsr.New(m, r, c, impl)
}

// NewBCSD converts a finalized matrix to BCSD with aligned, zero-padded
// diagonal blocks of length b (2..MaxBlockElems).
func NewBCSD[T Float](m *Matrix[T], b int, impl Impl) Format[T] {
	return bcsd.New(m, b, impl)
}

// NewBCSDCompact is NewBCSD with the narrowest diagonal-start-index type
// the matrix width admits; wide matrices fall back to the plain layout.
func NewBCSDCompact[T Float](m *Matrix[T], b int, impl Impl) Format[T] {
	return bcsd.NewCompact(m, b, impl)
}

// NewBCSDDec converts a finalized matrix to BCSD-DEC: completely dense
// aligned diagonal blocks without padding plus a CSR remainder.
func NewBCSDDec[T Float](m *Matrix[T], b int, impl Impl) Format[T] {
	return bcsd.NewDecomposed(m, b, impl)
}

// NewVBL converts a finalized matrix to 1D-VBL (variable-length
// horizontal blocks, Pinar & Heath). Blocks are the maximal runs of
// adjacent nonzeros in each row.
func NewVBL[T Float](m *Matrix[T], impl Impl) Format[T] { return vbl.New(m, impl) }

// NewVBLDP converts a finalized matrix to 1D-VBL with blocks chosen by a
// per-row dynamic program that minimizes the exact stored-byte footprint,
// merging nearby runs (padding the gap with explicit zeros) whenever the
// merge shrinks the stream the MEM model charges for. The result is never
// larger than NewVBL's.
func NewVBLDP[T Float](m *Matrix[T], impl Impl) Format[T] { return vbl.NewDP(m, impl) }

// NewVBR converts a finalized matrix to VBR (two-dimensional variable
// blocks over a pattern-consistent row/column partition, SPARSKIT). The
// partition groups adjacent rows and columns with identical sparsity
// patterns, so no block carries fill.
func NewVBR[T Float](m *Matrix[T], impl Impl) Format[T] { return vbr.New(m, impl) }

// NewVBRDP converts a finalized matrix to VBR over a cost-model-driven
// partition: a dynamic program (after Ahrens & Boman) aggregates rows and
// columns with merely similar patterns into block rows and columns,
// accepting zero fill inside blocks whenever the exact priced stream —
// values plus every VBR index array — shrinks. The result is never larger
// than NewVBR's, and on matrices with near-shared row sparsity (FEM-style
// multi-dof problems) it is substantially smaller.
func NewVBRDP[T Float](m *Matrix[T], impl Impl) Format[T] { return vbr.NewDP(m, impl) }

// NewSELL converts a finalized matrix to SELL-C-σ (sorted sliced
// ELLPACK): rows sorted by descending length inside scopes of sigma
// rows (1 keeps the natural order, 0 or >= rows sorts the whole
// matrix), grouped into slices of chunk rows, each slice padded to its
// own longest row and stored column-major. The row permutation is
// applied on output, so results stay bit-for-bit identical to CSR. The
// format needs no nonzero adjacency at all, making it the candidate
// class for scatter-dominated matrices (uniform random, power-law
// graphs, LP constraints) where every blocked format loses to CSR.
func NewSELL[T Float](m *Matrix[T], chunk, sigma int, impl Impl) Format[T] {
	return sell.New(m, chunk, sigma, impl)
}

// NewSELLCompact is NewSELL with the narrowest column-index type the
// matrix width admits; wide matrices fall back to the 4-byte layout.
func NewSELLCompact[T Float](m *Matrix[T], chunk, sigma int, impl Impl) Format[T] {
	return sell.NewCompact(m, chunk, sigma, impl)
}

// NewMultiDec converts a finalized matrix to the k=3 multi-pattern
// decomposition of Agarwal et al.: completely dense aligned r x c blocks,
// completely dense aligned length-b diagonal blocks extracted from the
// remainder, and a CSR tail — never any padding.
func NewMultiDec[T Float](m *Matrix[T], r, c, b int, impl Impl) Format[T] {
	return multidec.New(m, r, c, b, impl)
}

// NewDCSR converts a finalized matrix to delta-compressed CSR: column
// indices stored as per-row variable-length deltas (1 byte for gaps under
// 255), the index-compression branch of the working-set-reduction
// optimizations (Willcock & Lumsdaine; Kourtis et al.).
func NewDCSR[T Float](m *Matrix[T]) Format[T] { return dcsr.New(m) }

// MutableFormat is a delta overlay over a multiply-ready format: it
// implements Format and additionally accepts point updates — Set, Add,
// Delete, or atomic batches via Apply — whose effects every subsequent
// multiply observes without rebuilding the base. Pending updates cost
// extra streamed bytes per multiply (ExtraBytes); merge them into a
// freshly constructed base with MergedCOO when the overlay grows, or
// let the serving registry's background recompaction do it.
type MutableFormat[T Float] = overlay.Overlay[T]

// UpdateOp is the operation of one point update.
type UpdateOp = overlay.Op

// Update operations: set a cell to a value, add to it, or delete it.
const (
	OpSet    = overlay.OpSet
	OpAdd    = overlay.OpAdd
	OpDelete = overlay.OpDelete
)

// Update is one point update for MutableFormat.Apply.
type Update[T Float] = overlay.Update[T]

// NewOverlay wraps a format and the finalized matrix it was constructed
// from in a mutable delta overlay. The matrix is retained as ground
// truth and must not be mutated afterwards; it panics when f was not
// constructed from m (dimension or nonzero-count mismatch).
func NewOverlay[T Float](f Format[T], m *Matrix[T]) *MutableFormat[T] {
	return overlay.Wrap(f, m)
}

// Machine describes the host parameters the models consume: cache sizes
// and the effective streaming bandwidth.
type Machine = machine.Machine

// DetectMachine characterises the current host: cache sizes from sysfs
// (with Core 2 defaults as fallback) and a STREAM-triad bandwidth
// measurement. It takes on the order of a second.
func DetectMachine() Machine { return machine.Detect() }

// Profile is a per-kernel profile table: the single-block time t_b and
// non-overlapping factor nof_b for every block shape and implementation.
type Profile = profile.Table

// CollectProfile profiles every kernel for precision T on the machine:
// t_b on an L1-resident dense matrix, nof_b on a cache-exceeding one. It
// takes tens of seconds; persist the result with Profile.Save and reload
// it with LoadProfile.
func CollectProfile[T Float](m Machine) *Profile {
	return profile.Collect[T](m, profile.Options{})
}

// ProfileOptions tunes the profiling working sets; the zero value selects
// machine-derived defaults.
type ProfileOptions = profile.Options

// CollectProfileWith is CollectProfile with explicit profiling options.
func CollectProfileWith[T Float](m Machine, opts ProfileOptions) *Profile {
	return profile.Collect[T](m, opts)
}

// LoadProfile reads a profile previously written by Profile.Save.
func LoadProfile(r io.Reader) (*Profile, error) { return profile.Load(r) }

// Model predicts SpMV execution time for candidate formats. The three
// implementations are the paper's MEM, MEMCOMP and OVERLAP.
type Model = core.Model

// Candidate is one point of the selection space: method, block shape and
// implementation class.
type Candidate = core.Candidate

// Prediction pairs a candidate with its predicted seconds per multiply.
type Prediction = core.Prediction

// Models returns the three performance models in the paper's order:
// MEM, MEMCOMP, OVERLAP.
func Models() []Model { return core.Models() }

// ModelByName returns the model named "MEM", "MEMCOMP" or "OVERLAP".
func ModelByName(name string) (Model, error) { return core.ModelByName(name) }

// MulVecs computes y[l] = A*x[l] for every right-hand side in the panel
// x with a single traversal of the matrix: the vectors are packed into a
// row-major k-wide panel and multiplied through the format's panel
// kernels, so the matrix stream — the traffic that dominates SpMV — is
// paid once for all k vectors instead of k times. Results are bit-for-bit
// identical to k separate f.Mul calls. Like f.Mul it panics on operand
// shape mismatches; use MulVecsChecked for untrusted input, or
// ParallelMul.MulVecs for the pooled multithreaded path.
func MulVecs[T Float](f Format[T], x, y [][]T) { formats.MulVecs(f, x, y) }

// Rank prices every candidate format for the matrix under the model and
// returns the predictions sorted fastest-first. The selection space is
// the paper's (CSR, BCSR, BCSD and their decompositions) plus the
// compressed-index variants the matrix admits — narrow-index mirrors of
// every blocked shape and the delta-encoded CSR-DU — ranked on equal
// footing via their exact working-set sizes.
//
// Caveat: the models price CSR-DU by its byte stream alone. On patterns
// whose column gaps defeat delta grouping (e.g. uniform-random rows),
// the encoder emits near-singleton units whose decode overhead is not
// modelled, and a measured CSR-DU can fall far short of its prediction;
// the fixed-width compact variants carry no such decode cost and are
// the robust choice there (see EXPERIMENTS.md, index compression).
// Rank degrades gracefully: when the machine or profile cannot drive the
// model (bandwidth unmeasured; profile absent, incomplete or invalid), it
// returns a single scalar-CSR prediction flagged Degraded instead of
// panicking.
func Rank[T Float](m *Matrix[T], model Model, mach Machine, prof *Profile) []Prediction {
	return RankRHS(m, model, mach, prof, 1)
}

// RankRHS is Rank for a k-wide panel of right-hand sides (SpMM, MulVecs):
// the models charge the matrix stream once but the vector streams and the
// computational term k times, so the predicted seconds cover the whole
// panel and the ranking can shift — heavy-storage formats amortize their
// matrix bytes over k vectors and gain on lighter ones as k grows.
// rhs values below 1 are priced as the single-vector multiply.
func RankRHS[T Float](m *Matrix[T], model Model, mach Machine, prof *Profile, rhs int) []Prediction {
	if m == nil {
		return []Prediction{{Degraded: true, Reason: "nil matrix"}}
	}
	m.Finalize()
	return core.RankSafe(model, core.WithRHS(safeStats(m), rhs), mach, prof)
}

// safeStats enumerates candidate statistics under a recover backstop: a
// structurally corrupt matrix yields an empty candidate set (which the
// safe selection paths turn into a degraded CSR prediction) rather than
// a crash.
func safeStats[T Float](m *Matrix[T]) (stats []core.CandidateStats) {
	defer func() {
		if recover() != nil {
			stats = nil
		}
	}()
	return core.EnumerateStatsAll(mat.PatternOf(m), floats.SizeOf[T]())
}

// Autotune selects the best storage format for the matrix with the
// OVERLAP model (the paper's most accurate) and returns the constructed
// format together with the winning prediction.
//
// Autotune never panics: when the machine or profile cannot drive the
// model — bandwidth unmeasured; profile absent, incomplete or carrying
// invalid timings — it degrades to the always-safe scalar CSR baseline
// and flags the returned Prediction as Degraded with a Reason. A nil or
// unconvertible matrix returns a nil format with a degraded Prediction.
func Autotune[T Float](m *Matrix[T], mach Machine, prof *Profile) (Format[T], Prediction) {
	return AutotuneWith(m, core.Overlap{}, mach, prof)
}

// AutotuneRHS is Autotune for a workload of k-wide panel multiplies
// (MulVecs with k right-hand sides): candidates are priced with the
// matrix stream charged once and the vector streams and computation
// charged k times, so the selected format is the best one for the SpMM
// traffic pattern rather than the single-vector one.
func AutotuneRHS[T Float](m *Matrix[T], mach Machine, prof *Profile, rhs int) (Format[T], Prediction) {
	return autotune(m, core.Overlap{}, mach, prof, rhs)
}

// AutotuneWith is Autotune under a caller-chosen model. Like Rank, it
// selects over the paper's formats and the compressed-index variants,
// with the same graceful-degradation contract as Autotune.
func AutotuneWith[T Float](m *Matrix[T], model Model, mach Machine, prof *Profile) (Format[T], Prediction) {
	return autotune(m, model, mach, prof, 1)
}

func autotune[T Float](m *Matrix[T], model Model, mach Machine, prof *Profile, rhs int) (Format[T], Prediction) {
	if m == nil {
		return nil, Prediction{Degraded: true, Reason: "nil matrix"}
	}
	m.Finalize()
	best := core.SelectSafe(model, core.WithRHS(safeStats(m), rhs), mach, prof)
	f, err := construct(best.Cand.String(), func() Format[T] { return core.Instantiate(m, best.Cand) })
	if err == nil {
		return f, best
	}
	// The modelled winner would not build; retreat to CSR, which converts
	// from any structurally sound matrix.
	best = Prediction{
		Cand:     core.Candidate{Method: core.CSR, Shape: RectShape(1, 1)},
		Degraded: true,
		Reason:   err.Error(),
	}
	f, err = construct("CSR", func() Format[T] { return csr.FromCOO(m, Scalar) })
	if err != nil {
		return nil, Prediction{Degraded: true, Reason: err.Error()}
	}
	return f, best
}

// Instantiate constructs the storage format a candidate describes, e.g.
// one returned by Rank or Autotune.
func Instantiate[T Float](m *Matrix[T], c Candidate) Format[T] {
	return core.Instantiate(m, c)
}

// ParallelMul is a multithreaded y = A*x executor over a fixed row
// partition balanced by stored scalars (including padding), the paper's
// static load-balancing scheme. The workers are a persistent pool started
// at construction and pinned to their row ranges: repeated MulVec calls
// (the iterative-solver traffic pattern) pay no per-call goroutine spawns
// and no allocations, and each worker zero-fills its own slice of y so
// the output vector stays first-touched by its owning thread. Call Close
// to retire the pool.
//
// MulVec never panics and never deadlocks: dimension mismatches and use
// after Close return typed errors, and a panic inside a kernel on any
// worker is recovered and returned as a *PanicError naming the part; the
// pool is then poisoned and further calls fail fast (see the README's
// "Error handling & degraded modes").
type ParallelMul[T Float] = parallel.Mul[T]

// NewParallelMul prepares a multithreaded multiply with the given number
// of workers. Workers are started only for non-empty partition ranges,
// so oversubscribing a small matrix costs nothing.
func NewParallelMul[T Float](f Format[T], workers int) *ParallelMul[T] {
	return parallel.NewMul(f, workers, parallel.BalanceWeights)
}

// WorkingSetBytes returns the full streaming working set of a format:
// matrix structures plus input and output vectors.
func WorkingSetBytes[T Float](f Format[T]) int64 { return formats.WorkingSetBytes(f) }

// SolverOptions controls the iterative solvers; the zero value selects a
// precision-appropriate tolerance, a 10n iteration cap and serial
// execution. Setting Workers > 1 runs the whole solver iteration — the
// SpMV through a ParallelMul pool and the vector kernels (dot, axpy,
// norm, the fused recurrence updates) through a matching worker team —
// on that many threads, so end-to-end solve time scales with cores, not
// just the multiply.
type SolverOptions = solver.Options

// SolverStats reports the work a solve performed: iterations, SpMV count
// and the final relative residual.
type SolverStats = solver.Stats

// SolveCG solves A x = b with conjugate gradients for symmetric
// positive-definite A in any storage format, overwriting x (initial
// guess). SpMV dominates its runtime, so format selection carries through
// to end-to-end solve time; see examples/solver. This is also the
// parallel-solver entry point: SolverOptions.Workers > 1 runs every
// iteration on persistent worker pools.
func SolveCG[T Float](a Format[T], b, x []T, opts SolverOptions) (SolverStats, error) {
	return solver.CG(a, b, x, opts)
}

// SolveBiCGSTAB solves A x = b with stabilised bi-conjugate gradients for
// general square A, overwriting x.
func SolveBiCGSTAB[T Float](a Format[T], b, x []T, opts SolverOptions) (SolverStats, error) {
	return solver.BiCGSTAB(a, b, x, opts)
}

// JacobiPreconditioner is the diagonal preconditioner M = diag(A).
type JacobiPreconditioner[T Float] = solver.JacobiPreconditioner[T]

// NewJacobi extracts the inverse diagonal of a finalized square matrix
// for use with SolvePCG. Non-square matrices return an error, like every
// other solver entry point.
func NewJacobi[T Float](m *Matrix[T]) (*JacobiPreconditioner[T], error) {
	return solver.NewJacobi(m)
}

// SolvePCG solves A x = b with Jacobi-preconditioned conjugate gradients
// for symmetric positive-definite A, overwriting x.
func SolvePCG[T Float](a Format[T], pre *JacobiPreconditioner[T], b, x []T, opts SolverOptions) (SolverStats, error) {
	return solver.PCG(a, pre, b, x, opts)
}

// Permutation maps new indices to old: perm[new] = old.
type Permutation = reorder.Permutation

// RCM computes the Reverse Cuthill-McKee ordering of a square matrix's
// symmetrised pattern. Reordering regularises input-vector accesses (the
// complement of blocking among SpMV optimizations) and often makes
// blocking itself denser; apply with Reorder.
func RCM[T Float](m *Matrix[T]) (Permutation, error) {
	return reorder.RCM(mat.PatternOf(m))
}

// Reorder returns the symmetrically permuted matrix P A Pᵀ. Multiply it
// against PermuteVec(x, perm) and map the result back with UnpermuteVec.
func Reorder[T Float](m *Matrix[T], perm Permutation) (*Matrix[T], error) {
	return reorder.Apply(m, perm)
}

// PermuteVec gathers x into the permuted index space: out[i] = x[perm[i]].
func PermuteVec[T Float](x []T, perm Permutation) []T {
	return reorder.PermuteVec(x, perm)
}

// UnpermuteVec scatters a permuted vector back: out[perm[i]] = y[i].
func UnpermuteVec[T Float](y []T, perm Permutation) []T {
	return reorder.UnpermuteVec(y, perm)
}
