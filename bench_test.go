// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus kernel microbenchmarks and the
// ablation benches called out in DESIGN.md.
//
// The experiment benchmarks drive the same harness as cmd/spmvbench at
// the Tiny suite scale over a representative matrix subset, so that a
// full `-bench=.` sweep stays in the minutes range; run cmd/spmvbench
// with -scale small (or paper) for publication-shape numbers. Custom
// metrics (wins, prediction error, distance from optimal selection) are
// attached to each benchmark result via ReportMetric.
package blockspmv_test

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"blockspmv/internal/bcsr"
	"blockspmv/internal/bench"
	"blockspmv/internal/blocks"
	"blockspmv/internal/core"
	"blockspmv/internal/csr"
	"blockspmv/internal/dcsr"
	"blockspmv/internal/floats"
	"blockspmv/internal/kernels"
	"blockspmv/internal/machine"
	"blockspmv/internal/mat"
	"blockspmv/internal/parallel"
	"blockspmv/internal/profile"
	"blockspmv/internal/reorder"
	"blockspmv/internal/suite"
	"blockspmv/internal/ubcsr"
	"blockspmv/internal/vbl"
)

// benchIDs is the default representative subset: the two special
// matrices, one of each structural archetype, and the latency-bound
// cases. Override with BLOCKSPMV_BENCH_IDS=1,2,...  or set it to "all".
func benchIDs() []int {
	env := os.Getenv("BLOCKSPMV_BENCH_IDS")
	if env == "all" {
		var ids []int
		for id := 1; id <= suite.Count; id++ {
			ids = append(ids, id)
		}
		return ids
	}
	if env != "" {
		var ids []int
		for _, f := range strings.Split(env, ",") {
			if n, err := strconv.Atoi(strings.TrimSpace(f)); err == nil {
				ids = append(ids, n)
			}
		}
		if len(ids) > 0 {
			return ids
		}
	}
	return []int{1, 2, 5, 9, 12, 18, 21, 23, 28, 29}
}

var (
	sessOnce sync.Once
	sess     *bench.Session
)

// session lazily builds the shared measurement session: machine
// characterisation, kernel profiles and the per-matrix candidate timings
// are collected once for the whole -bench run.
func session(b *testing.B) *bench.Session {
	b.Helper()
	sessOnce.Do(func() {
		mach := machine.Machine{
			Cores:       1,
			L1DataBytes: 32 << 10, L2Bytes: 2 << 20, LLCBytes: 2 << 20,
			BandwidthBytesPerSec: machine.MeasureTriadBandwidth(16<<20, 2),
			TriadBytes:           16 << 20,
		}
		opts := profile.Options{TbBytes: 8 << 10, NofBytes: 4 << 20}
		cfg := bench.Config{
			Scale:      suite.Tiny,
			MatrixIDs:  benchIDs(),
			Iterations: 5,
			Warmup:     1,
			Machine:    mach,
			Profiles: map[string]*profile.Table{
				"dp": profile.Collect[float64](mach, opts),
				"sp": profile.Collect[float32](mach, opts),
			},
			Cores: []int{1, 2, 4},
		}
		sess = bench.NewSession(cfg)
	})
	return sess
}

// BenchmarkTable1Suite regenerates Table I: suite generation plus the
// rows/nonzeros/working-set accounting.
func BenchmarkTable1Suite(b *testing.B) {
	cfg := bench.Config{Scale: suite.Tiny, MatrixIDs: benchIDs()}
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(cfg)
	}
	var nnz int64
	for _, r := range rows {
		nnz += r.NNZ
	}
	b.ReportMetric(float64(len(rows)), "matrices")
	b.ReportMetric(float64(nnz), "total-nnz")
}

// BenchmarkTable2Wins regenerates Table II: best-format wins per
// configuration. The headline check is that BCSR leads on the blocked
// archetypes while CSR stays competitive.
func BenchmarkTable2Wins(b *testing.B) {
	s := session(b)
	var res bench.WinsResult
	for i := 0; i < b.N; i++ {
		res = bench.Table2(s)
	}
	b.ReportMetric(float64(res.Counts["dp"]["BCSR"]), "dp-bcsr-wins")
	b.ReportMetric(float64(res.Counts["dp"]["CSR"]), "dp-csr-wins")
	b.ReportMetric(float64(res.Counts["sp-simd"]["BCSR"]), "spsimd-bcsr-wins")
}

// BenchmarkTable3Speedups regenerates Table III: min/avg/max speedup over
// CSR per blocked method.
func BenchmarkTable3Speedups(b *testing.B) {
	s := session(b)
	var res bench.SpeedupResult
	for i := 0; i < b.N; i++ {
		res = bench.Table3(s)
	}
	b.ReportMetric(res.Average[core.BCSR].Max, "bcsr-max-speedup")
	b.ReportMetric(res.Average[core.BCSRDec].Avg, "bcsrdec-avg-speedup")
	b.ReportMetric(res.VBLAvg, "vbl-avg-speedup")
}

// BenchmarkFig2Multicore regenerates Figure 2: the wins distribution at
// 1, 2 and 4 worker threads.
func BenchmarkFig2Multicore(b *testing.B) {
	s := session(b)
	var res bench.MulticoreWins
	for i := 0; i < b.N; i++ {
		res = bench.Fig2(s)
	}
	b.ReportMetric(float64(res.Counts["dp/4c"]["BCSR"]), "dp4c-bcsr-wins")
	b.ReportMetric(float64(res.Matrices), "matrices")
}

// BenchmarkFig3Prediction regenerates Figure 3: model prediction accuracy
// (average |predicted-real|/real per model).
func BenchmarkFig3Prediction(b *testing.B) {
	s := session(b)
	var dp bench.PredictionResult
	for i := 0; i < b.N; i++ {
		_ = bench.Fig3(s, "sp")
		dp = bench.Fig3(s, "dp")
	}
	b.ReportMetric(100*dp.AvgAbsErr["MEM"], "dp-mem-err-pct")
	b.ReportMetric(100*dp.AvgAbsErr["MEMCOMP"], "dp-memcomp-err-pct")
	b.ReportMetric(100*dp.AvgAbsErr["OVERLAP"], "dp-overlap-err-pct")
}

// BenchmarkFig4Selection regenerates Figure 4: measured performance of
// each model's selection normalized to the best.
func BenchmarkFig4Selection(b *testing.B) {
	s := session(b)
	var dp bench.SelectionResult
	for i := 0; i < b.N; i++ {
		dp = bench.Fig4(s, "dp")
	}
	b.ReportMetric(100*dp.OffFromBest["MEM"], "dp-mem-off-pct")
	b.ReportMetric(100*dp.OffFromBest["OVERLAP"], "dp-overlap-off-pct")
}

// BenchmarkTable4Selection regenerates Table IV: optimal selections per
// model for both precisions.
func BenchmarkTable4Selection(b *testing.B) {
	s := session(b)
	var sp, dp bench.SelectionResult
	for i := 0; i < b.N; i++ {
		sp = bench.Fig4(s, "sp")
		dp = bench.Fig4(s, "dp")
	}
	b.ReportMetric(float64(sp.Correct["OVERLAP"]), "sp-overlap-correct")
	b.ReportMetric(float64(dp.Correct["OVERLAP"]), "dp-overlap-correct")
	b.ReportMetric(float64(dp.Correct["MEM"]), "dp-mem-correct")
}

// BenchmarkZeroColInd regenerates the Section V.B latency probe.
func BenchmarkZeroColInd(b *testing.B) {
	cfg := bench.Config{Scale: suite.Tiny, Iterations: 5, Warmup: 1}
	var rows []bench.LatencyRow
	for i := 0; i < b.N; i++ {
		rows = bench.Latency(cfg, []int{12, 23})
	}
	b.ReportMetric(rows[0].Speedup, "wikipedia-speedup")
	b.ReportMetric(rows[1].Speedup, "fdiff-speedup")
}

// BenchmarkKernels microbenchmarks every generated block kernel over a
// synthetic block row resident in cache: the Go analogue of the paper's
// t_b profiling.
func BenchmarkKernels(b *testing.B) {
	const nBlocks = 512
	rng := rand.New(rand.NewSource(1))
	x := floats.RandVector[float64](4096, 1)
	for _, s := range blocks.AllShapes() {
		span := s.C
		if s.Kind == blocks.Diag {
			span = s.R
		}
		bval := make([]float64, nBlocks*s.Elems())
		for i := range bval {
			bval[i] = rng.Float64()
		}
		bcol := make([]int32, nBlocks)
		for i := range bcol {
			bcol[i] = int32(rng.Intn(4096 - span))
		}
		y := make([]float64, s.R)
		for _, impl := range blocks.Impls() {
			k := kernels.ForShape[float64](s, impl)
			b.Run(s.String()+"/"+impl.String(), func(b *testing.B) {
				b.SetBytes(int64(nBlocks * s.Elems() * 8))
				for i := 0; i < b.N; i++ {
					k(bval, bcol, x, y)
				}
				b.ReportMetric(float64(2*nBlocks*s.Elems())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
			})
		}
	}
}

// benchFEM returns a shared FEM-archetype matrix for the format and
// ablation benches.
var benchFEM = sync.OnceValue(func() *mat.COO[float64] {
	return suite.MustBuild[float64](21, suite.Tiny) // audikw archetype
})

// BenchmarkFormatsMul times a full y = A*x per storage format on the
// 3-dof FEM archetype.
func BenchmarkFormatsMul(b *testing.B) {
	m := benchFEM()
	x := floats.RandVector[float64](m.Cols(), 2)
	y := make([]float64, m.Rows())
	cands := []core.Candidate{
		{Method: core.CSR, Shape: blocks.RectShape(1, 1), Impl: blocks.Scalar},
		{Method: core.CSR, Shape: blocks.RectShape(1, 1), Impl: blocks.Vector},
		{Method: core.BCSR, Shape: blocks.RectShape(3, 2), Impl: blocks.Scalar},
		{Method: core.BCSR, Shape: blocks.RectShape(3, 2), Impl: blocks.Vector},
		{Method: core.BCSRDec, Shape: blocks.RectShape(3, 2), Impl: blocks.Scalar},
		{Method: core.BCSD, Shape: blocks.DiagShape(4), Impl: blocks.Scalar},
		{Method: core.BCSDDec, Shape: blocks.DiagShape(4), Impl: blocks.Scalar},
	}
	for _, c := range cands {
		inst := core.Instantiate(m, c)
		b.Run(c.String(), func(b *testing.B) {
			b.SetBytes(inst.MatrixBytes())
			for i := 0; i < b.N; i++ {
				inst.Mul(x, y)
			}
		})
	}
	v := vbl.New(m, blocks.Scalar)
	b.Run("1D-VBL", func(b *testing.B) {
		b.SetBytes(v.MatrixBytes())
		for i := 0; i < b.N; i++ {
			v.Mul(x, y)
		}
	})
}

// BenchmarkAblationBalance compares the paper's stored-scalar balanced
// partitioning against naive equal-rows splitting on a skewed matrix
// (DESIGN.md ablation 1). The metric is the imbalance ratio: max part
// weight over ideal.
func BenchmarkAblationBalance(b *testing.B) {
	// Skewed density: bottom tenth of the rows holds half the nonzeros.
	rng := rand.New(rand.NewSource(5))
	n := 40_000
	m := mat.New[float64](n, n)
	for r := 0; r < n; r++ {
		per := 4
		if r >= 9*n/10 {
			per = 36
		}
		for k := 0; k < per; k++ {
			m.Add(int32(r), int32(rng.Intn(n)), 1)
		}
	}
	m.Finalize()
	inst := csr.FromCOO(m, blocks.Scalar)
	x := floats.RandVector[float64](n, 3)
	y := make([]float64, n)
	for _, tc := range []struct {
		name     string
		strategy parallel.Strategy
	}{
		{"balanced", parallel.BalanceWeights},
		{"equal-rows", parallel.EqualRows},
	} {
		pm := parallel.NewMul(inst, 4, tc.strategy)
		weights := pm.PartWeights()
		var maxW, total int64
		for _, w := range weights {
			total += w
			if w > maxW {
				maxW = w
			}
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pm.MulVec(x, y)
			}
			b.ReportMetric(float64(maxW)/(float64(total)/4), "imbalance")
		})
	}
}

// BenchmarkAblationAlignment compares aligned BCSR against the
// column-unaligned UBCSR on a matrix whose dense tiles sit at unaligned
// offsets (DESIGN.md ablation 2). The metric is the padding ratio.
func BenchmarkAblationAlignment(b *testing.B) {
	// 2x4 dense tiles anchored at odd column offsets.
	rng := rand.New(rand.NewSource(6))
	n := 20_000
	m := mat.New[float64](n, n)
	for t := 0; t < n/2-1; t++ {
		r0 := t * 2
		c0 := 1 + rng.Intn(n-6)
		for i := 0; i < 2; i++ {
			for j := 0; j < 4; j++ {
				m.Add(int32(r0+i), int32(c0+j), 1)
			}
		}
	}
	m.Finalize()
	x := floats.RandVector[float64](n, 4)
	y := make([]float64, n)
	aligned := bcsr.New(m, 2, 4, blocks.Scalar)
	unaligned := ubcsr.New(m, 2, 4, blocks.Scalar)
	b.Run("BCSR-aligned", func(b *testing.B) {
		b.SetBytes(aligned.MatrixBytes())
		for i := 0; i < b.N; i++ {
			aligned.Mul(x, y)
		}
		b.ReportMetric(float64(aligned.Padding())/float64(aligned.NNZ()), "padding-ratio")
	})
	b.Run("UBCSR-unaligned", func(b *testing.B) {
		b.SetBytes(unaligned.MatrixBytes())
		for i := 0; i < b.N; i++ {
			unaligned.Mul(x, y)
		}
		b.ReportMetric(float64(unaligned.Padding())/float64(unaligned.NNZ()), "padding-ratio")
	})
}

// BenchmarkAblationVBLIndex compares 1D-VBL's 1-byte block sizes against
// a 4-byte variant (DESIGN.md ablation 3): the paper's choice saves 3
// bytes per block at the cost of splitting runs longer than 255.
func BenchmarkAblationVBLIndex(b *testing.B) {
	m := suite.MustBuild[float64](19, suite.Tiny) // long dense rows
	x := floats.RandVector[float64](m.Cols(), 5)
	y := make([]float64, m.Rows())
	narrow := vbl.New(m, blocks.Scalar)
	wide := vbl.NewWide(m, blocks.Scalar)
	b.Run("1byte", func(b *testing.B) {
		b.SetBytes(narrow.MatrixBytes())
		for i := 0; i < b.N; i++ {
			narrow.Mul(x, y)
		}
		b.ReportMetric(float64(narrow.Blocks()), "blocks")
	})
	b.Run("4byte", func(b *testing.B) {
		b.SetBytes(wide.MatrixBytes())
		for i := 0; i < b.N; i++ {
			wide.Mul(x, y)
		}
		b.ReportMetric(float64(wide.Blocks()), "blocks")
	})
}

// BenchmarkAblationDispatch compares the generated unrolled kernels
// against the generic loop-based kernel (DESIGN.md ablation 4): the cost
// of not specialising per shape.
func BenchmarkAblationDispatch(b *testing.B) {
	m := benchFEM()
	x := floats.RandVector[float64](m.Cols(), 6)
	y := make([]float64, m.Rows())
	for _, s := range []blocks.Shape{blocks.RectShape(3, 2), blocks.RectShape(1, 8)} {
		inst := bcsr.New(m, s.R, s.C, blocks.Scalar)
		b.Run("unrolled-"+s.String(), func(b *testing.B) {
			b.SetBytes(inst.MatrixBytes())
			for i := 0; i < b.N; i++ {
				inst.Mul(x, y)
			}
		})
		// The generic path: measured through the raw kernels on the same
		// block data via an instance built with an out-of-registry shape
		// is impossible, so time the kernel functions directly.
		p := mat.PatternOf(m)
		cnt := blocks.CountRect(p, s.R, s.C)
		nb := int(cnt.Blocks) / max(1, (m.Rows()+s.R-1)/s.R) // avg per block row
		bval := make([]float64, max(nb, 1)*s.Elems())
		bcol := make([]int32, max(nb, 1))
		gen := kernels.Generic[float64](s)
		unr := kernels.ForShape[float64](s, blocks.Scalar)
		ys := make([]float64, s.R)
		b.Run("kernel-generic-"+s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen(bval, bcol, x, ys)
			}
		})
		b.Run("kernel-unrolled-"+s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				unr(bval, bcol, x, ys)
			}
		})
	}
}

// BenchmarkAblationNof compares OVERLAP selection quality with the
// per-shape profiled nof against a single global average nof (DESIGN.md
// ablation 5). The metric is the average distance from the optimal
// selection.
func BenchmarkAblationNof(b *testing.B) {
	s := session(b)
	prof := s.Cfg.Profiles["dp"]

	// Build the degraded profile: every entry gets the global mean nof.
	var mean float64
	for _, e := range prof.Entries {
		mean += e.Nof
	}
	mean /= float64(len(prof.Entries))
	flat := &profile.Table{Precision: prof.Precision, Machine: prof.Machine,
		Entries: make(map[profile.Key]profile.Entry, len(prof.Entries))}
	for k, e := range prof.Entries {
		flat.Entries[k] = profile.Entry{Tb: e.Tb, Nof: mean}
	}

	selQuality := func(p *profile.Table) float64 {
		var off float64
		ids := s.NonSpecialIDs()
		for _, id := range ids {
			run := s.DP(id)
			best := run.Best(true)
			bestPred, sel := -1.0, core.Candidate{}
			for _, t := range run.Timings {
				pred := (core.Overlap{}).Predict(t.Stats, s.Cfg.Machine, p)
				if bestPred < 0 || pred < bestPred {
					bestPred, sel = pred, t.Cand
				}
			}
			if t, ok := run.Find(sel); ok {
				off += t.Seconds/best.Seconds - 1
			}
		}
		return off / float64(len(ids))
	}

	var perShape, global float64
	for i := 0; i < b.N; i++ {
		perShape = selQuality(prof)
		global = selQuality(flat)
	}
	b.ReportMetric(100*perShape, "per-shape-off-pct")
	b.ReportMetric(100*global, "global-nof-off-pct")
}

// BenchmarkFormatsDCSR compares CSR with the delta-compressed DCSR on
// banded (compressible) and scattered (incompressible) structures.
func BenchmarkFormatsDCSR(b *testing.B) {
	m := benchFEM()
	x := floats.RandVector[float64](m.Cols(), 7)
	y := make([]float64, m.Rows())
	c := csr.FromCOO(m, blocks.Scalar)
	d := dcsr.New(m)
	b.Run("CSR", func(b *testing.B) {
		b.SetBytes(c.MatrixBytes())
		for i := 0; i < b.N; i++ {
			c.Mul(x, y)
		}
	})
	b.Run("DCSR", func(b *testing.B) {
		b.SetBytes(d.MatrixBytes())
		b.ReportMetric(float64(d.MatrixBytes())/float64(c.MatrixBytes()), "ws-ratio")
		for i := 0; i < b.N; i++ {
			d.Mul(x, y)
		}
	})
}

// BenchmarkAblationReorder measures what RCM reordering buys blocking on
// a bandable matrix whose rows were shuffled: block density and SpMV time
// before and after reordering.
func BenchmarkAblationReorder(b *testing.B) {
	// A shuffled 2x2-tiled band matrix.
	rng := rand.New(rand.NewSource(9))
	nTiles := 6000
	n := nTiles * 2
	base := mat.New[float64](n, n)
	for t := 0; t < nTiles; t++ {
		for o := -1; o <= 1; o++ {
			ct := t + o
			if ct < 0 || ct >= nTiles {
				continue
			}
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					base.Add(int32(t*2+i), int32(ct*2+j), rng.Float64()+0.1)
				}
			}
		}
	}
	base.Finalize()
	perm := make(reorder.Permutation, n)
	// Shuffle whole 2-row tiles so the block structure survives in
	// principle but is scattered across the index space.
	tileOrder := rng.Perm(nTiles)
	for t, src := range tileOrder {
		perm[2*t] = int32(2 * src)
		perm[2*t+1] = int32(2*src + 1)
	}
	shuffled, err := reorder.Apply(base, perm)
	if err != nil {
		b.Fatal(err)
	}

	rcmPerm, err := reorder.RCM(mat.PatternOf(shuffled))
	if err != nil {
		b.Fatal(err)
	}
	restored, err := reorder.Apply(shuffled, rcmPerm)
	if err != nil {
		b.Fatal(err)
	}

	x := floats.RandVector[float64](n, 10)
	y := make([]float64, n)
	for _, tc := range []struct {
		name string
		m    *mat.COO[float64]
	}{{"shuffled", shuffled}, {"rcm-reordered", restored}} {
		inst := bcsr.New(tc.m, 2, 2, blocks.Scalar)
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(inst.MatrixBytes())
			b.ReportMetric(mat.ComputeStats(tc.m).DiagonalRunFraction, "diag-run-frac")
			b.ReportMetric(float64(inst.Padding())/float64(inst.NNZ()), "padding-ratio")
			for i := 0; i < b.N; i++ {
				inst.Mul(x, y)
			}
		})
	}
}

// TestBenchIDsEnv exercises the benchmark-subset parsing.
func TestBenchIDsEnv(t *testing.T) {
	t.Setenv("BLOCKSPMV_BENCH_IDS", "3, 7,11")
	ids := benchIDs()
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 7 || ids[2] != 11 {
		t.Errorf("benchIDs = %v", ids)
	}
	t.Setenv("BLOCKSPMV_BENCH_IDS", "all")
	if ids = benchIDs(); len(ids) != suite.Count {
		t.Errorf("benchIDs(all) returned %d ids", len(ids))
	}
	t.Setenv("BLOCKSPMV_BENCH_IDS", "garbage")
	if ids = benchIDs(); len(ids) != 10 {
		t.Errorf("benchIDs(garbage) returned %v, want the default subset", ids)
	}
}
