package blockspmv_test

import (
	"testing"

	"blockspmv"
)

func TestAutotuneDegradesWithoutProfile(t *testing.T) {
	m := buildTestMatrix()
	f, pred := blockspmv.Autotune(m, testMachine(), nil)
	if !pred.Degraded || pred.Reason == "" {
		t.Fatalf("prediction %+v, want degraded with reason", pred)
	}
	if f == nil || f.Name() != "CSR" {
		t.Fatalf("fallback format %v, want plain CSR", f)
	}
	if pred.Cand.String() != "CSR" {
		t.Errorf("fallback candidate %q, want CSR", pred.Cand)
	}
	// The streaming bound is still computable from the bandwidth alone.
	if pred.Seconds <= 0 {
		t.Errorf("degraded prediction has no streaming bound: %+v", pred)
	}
	mulAndCompare(t, m, f)
}

func TestAutotuneDegradesWithoutBandwidth(t *testing.T) {
	m := buildTestMatrix()
	f, pred := blockspmv.Autotune(m, blockspmv.Machine{}, testProfile(t))
	if !pred.Degraded {
		t.Fatalf("prediction %+v, want degraded", pred)
	}
	if f == nil || f.Name() != "CSR" {
		t.Fatalf("fallback format %v, want plain CSR", f)
	}
	mulAndCompare(t, m, f)
}

func TestAutotuneDegradesOnIncompleteProfile(t *testing.T) {
	m := buildTestMatrix()
	prof := testProfile(t)
	// Remove one plain-variant entry; the DU rows are optional, but every
	// plain (shape, impl) row is required for a usable profile.
	for k := range prof.Entries {
		if k.Variant == 0 {
			delete(prof.Entries, k)
			break
		}
	}
	f, pred := blockspmv.Autotune(m, testMachine(), prof)
	if !pred.Degraded {
		t.Fatalf("prediction %+v, want degraded", pred)
	}
	mulAndCompare(t, m, f)
}

func TestAutotuneNilMatrix(t *testing.T) {
	f, pred := blockspmv.Autotune[float64](nil, testMachine(), nil)
	if f != nil || !pred.Degraded {
		t.Fatalf("nil matrix: format %v, prediction %+v", f, pred)
	}
}

func TestRankDegradesToSinglePrediction(t *testing.T) {
	m := buildTestMatrix()
	// OVERLAP needs a profile; without one the ranking collapses to the
	// degraded CSR prediction instead of panicking.
	preds := blockspmv.Rank(m, blockspmv.Models()[2], testMachine(), nil)
	if len(preds) != 1 || !preds[0].Degraded {
		t.Fatalf("ranked %d predictions (%+v), want 1 degraded", len(preds), preds)
	}
	// MEM needs only the bandwidth: no profile is not a degradation.
	preds = blockspmv.Rank(m, blockspmv.Models()[0], testMachine(), nil)
	if len(preds) < 2 || preds[0].Degraded {
		t.Fatalf("MEM without profile: %d predictions, degraded=%v", len(preds), preds[0].Degraded)
	}
}
