# Developer entry points. `make check` is the tier-1 verify referenced
# from ROADMAP.md; `make race` exercises the concurrent packages (the
# worker-pool executor, the vector kernels, the solvers built on them and
# the fault-injection harness) under the race detector; `make fuzz` runs a
# short smoke pass of every fuzz target over the untrusted-input parsers;
# `make gencheck` regenerates the block kernels into a temp dir and fails
# if the committed *_gen.go files have drifted from the generator.

GO ?= go

RACE_PKGS = ./internal/workpool ./internal/parallel ./internal/vecops ./internal/solver \
    ./internal/conformance ./internal/csrdu ./internal/faultcheck \
    ./internal/server ./internal/metrics ./internal/sell ./internal/shard \
    ./internal/overlay

FUZZTIME ?= 5s

.PHONY: check vet build test race fuzz gencheck bench bench-json

check: vet build test race fuzz gencheck

# gencheck guards against generator drift: the committed *_gen.go kernel
# sources must match what the generator emits today.
gencheck:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./internal/kernels/genkernels -out "$$tmp" && \
	status=0 && \
	for f in "$$tmp"/*_gen.go; do \
		if ! diff -u internal/kernels/$$(basename "$$f") "$$f"; then status=1; fi; \
	done && \
	if [ $$status -ne 0 ]; then \
		echo "gencheck: committed *_gen.go files drifted from the generator; run go generate ./internal/kernels"; \
		exit 1; \
	fi && echo "gencheck: generated kernels in sync"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Go runs one fuzz target per invocation, so each gets its own line.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadMatrixMarket$$' -fuzztime $(FUZZTIME) ./internal/mat
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) ./internal/profile
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeVector$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzWireRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzShardFrame$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzShardPanelFrame$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzUpdateFrame$$' -fuzztime $(FUZZTIME) ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzVBRPartition$$' -fuzztime $(FUZZTIME) ./internal/partition
	$(GO) test -run '^$$' -fuzz '^FuzzVBLRowBlocks$$' -fuzztime $(FUZZTIME) ./internal/partition
	$(GO) test -run '^$$' -fuzz '^FuzzSELLConstruction$$' -fuzztime $(FUZZTIME) ./internal/sell

bench:
	$(GO) test -bench 'MulVecWorkers|SolveCGWorkers' -benchmem \
	    ./internal/parallel ./internal/solver

# bench-json regenerates the tracked machine-readable benchmark
# artifacts: BENCH_compress.json (index-compression experiment: bytes/nnz,
# measured and MEM-predicted speedup per format), BENCH_vbr.json
# (cost-model-driven variable-block partitioning: DP-aggregated VBR/VBL
# vs run-detection blocks vs CSR on the shared-sparsity archetypes),
# BENCH_spmm.json (multi-RHS panel multiply vs independent SpMVs per
# panel width, with the MEM-with-k predicted speedup), BENCH_sell.json
# (SELL-C-σ sweep vs scalar CSR on the scatter archetypes: padding
# ratio, MEM band, selection outcomes; the spmvbench run itself exits
# non-zero if the experiment's selection assertions fail),
# BENCH_serve.json (spmvd request coalescing: closed-loop
# throughput/latency batched vs unbatched) and BENCH_shard.json (the
# row-shard coordinator swept over shard counts behind chaos proxies:
# throughput that survives wire faults, retry counts, fan-out cost vs
# one shard, and per shard count the coordinator's gather-window
# batcher coalescing callers into multi-RHS panels vs per-call
# scatter, with the mean panel width), and BENCH_overlay.json (mutable
# matrices: read throughput before/during/after update churn through
# background recompaction, with the post-recompaction recovery ratio
# against the construct-once baseline).
bench-json:
	$(GO) run ./cmd/spmvbench -experiment compress -scale small \
	    -iterations 20 -json BENCH_compress.json
	$(GO) run ./cmd/spmvbench -experiment vbr -scale small \
	    -iterations 20 -json BENCH_vbr.json
	$(GO) run ./cmd/spmvbench -experiment sell -scale small \
	    -iterations 20 -json BENCH_sell.json
	$(GO) run ./cmd/spmvbench -experiment spmm -scale small \
	    -iterations 20 -cores 1,2,4 -rhs 1,2,4,8 -json BENCH_spmm.json
	$(GO) run ./cmd/spmvload -clients 8 -duration 2s -batch 8 \
	    -n 16384 -density 0.008 -workers 1 -window 3ms -detect=false \
	    -json BENCH_serve.json
	$(GO) run ./cmd/spmvload -shards 1,2,4 -chaos -clients 8 -duration 2s \
	    -n 8192 -density 0.008 -batch 8 -window 1ms -detect=false \
	    -json BENCH_shard.json
	$(GO) run ./cmd/spmvload -updates -clients 8 -duration 2s -batch 8 \
	    -n 8192 -density 0.008 -workers 1 -window 3ms -detect=false \
	    -update-batch 64 -recompact-after 512 -json BENCH_overlay.json
