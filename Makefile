# Developer entry points. `make check` is the tier-1 verify referenced
# from ROADMAP.md; `make race` exercises the concurrent packages (the
# worker-pool executor, the vector kernels, the solvers built on them and
# the fault-injection harness) under the race detector; `make fuzz` runs a
# short smoke pass of every fuzz target over the untrusted-input parsers.

GO ?= go

RACE_PKGS = ./internal/workpool ./internal/parallel ./internal/vecops ./internal/solver \
    ./internal/conformance ./internal/csrdu ./internal/faultcheck

FUZZTIME ?= 5s

.PHONY: check vet build test race fuzz bench bench-json

check: vet build test race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Go runs one fuzz target per invocation, so each gets its own line.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzReadMatrixMarket$$' -fuzztime $(FUZZTIME) ./internal/mat
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) ./internal/profile

bench:
	$(GO) test -bench 'MulVecWorkers|SolveCGWorkers' -benchmem \
	    ./internal/parallel ./internal/solver

# bench-json regenerates the tracked BENCH_compress.json artifact: the
# index-compression experiment (bytes/nnz, measured and MEM-predicted
# speedup per format) in machine-readable form.
bench-json:
	$(GO) run ./cmd/spmvbench -experiment compress -scale small \
	    -iterations 20 -json BENCH_compress.json
