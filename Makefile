# Developer entry points. `make check` is the tier-1 verify referenced
# from ROADMAP.md; `make race` exercises the concurrent packages (the
# worker-pool executor, the vector kernels and the solvers built on them)
# under the race detector.

GO ?= go

RACE_PKGS = ./internal/workpool ./internal/parallel ./internal/vecops ./internal/solver \
    ./internal/conformance ./internal/csrdu

.PHONY: check vet build test race bench bench-json

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench 'MulVecWorkers|SolveCGWorkers' -benchmem \
	    ./internal/parallel ./internal/solver

# bench-json regenerates the tracked BENCH_compress.json artifact: the
# index-compression experiment (bytes/nnz, measured and MEM-predicted
# speedup per format) in machine-readable form.
bench-json:
	$(GO) run ./cmd/spmvbench -experiment compress -scale small \
	    -iterations 20 -json BENCH_compress.json
