package blockspmv

import (
	"fmt"

	"blockspmv/internal/bcsd"
	"blockspmv/internal/bcsr"
	"blockspmv/internal/blocks"
	"blockspmv/internal/core"
	"blockspmv/internal/csr"
	"blockspmv/internal/csrdu"
	"blockspmv/internal/dcsr"
	"blockspmv/internal/formats"
	"blockspmv/internal/mat"
	"blockspmv/internal/multidec"
	"blockspmv/internal/overlay"
	"blockspmv/internal/parallel"
	"blockspmv/internal/sell"
	"blockspmv/internal/ubcsr"
	"blockspmv/internal/vbl"
	"blockspmv/internal/vbr"
	"blockspmv/internal/workpool"
)

// This file is the error-returning construction surface. The plain NewXxx
// constructors trust their input and panic on contract violations, which
// is the right trade for the benchmark harness; these Checked twins accept
// arbitrary input — untrusted files, fuzzer output, hostile callers — and
// return typed errors instead. Hot multiply loops stay validation-free
// either way: all checking happens once, at the construction boundary.

// PanicError reports a panic recovered inside a parallel kernel: which
// partition part panicked, the panic value, and the goroutine stack.
// ParallelMul.MulVec and the solvers surface it via errors.As.
type PanicError = workpool.PanicError

// PoisonedError reports a ParallelMul (or solver worker team) reused after
// an earlier kernel panic poisoned it; First is that original panic.
type PoisonedError = workpool.PoisonedError

// DimError reports operand vectors whose lengths do not match the matrix
// shape, from MulVecChecked or ParallelMul.MulVec.
type DimError = formats.DimError

// PanelError reports right-hand-side and output panels of different
// widths passed to MulVecsChecked or ParallelMul.MulVecs (individual
// vectors of the wrong length surface as *DimError).
type PanelError = formats.PanelError

// ShapeError reports an unsupported block geometry (r, c or b out of the
// kernel set's range) passed to a Checked constructor.
type ShapeError = blocks.ShapeError

// Sentinel errors surfaced by the validated construction and execution
// paths; match with errors.Is.
var (
	// ErrPoolClosed marks a ParallelMul used after Close.
	ErrPoolClosed = parallel.ErrClosed
	// ErrPoisoned marks a worker pool reused after a kernel panic.
	ErrPoisoned = workpool.ErrPoisoned
	// ErrDims marks negative or index-overflowing matrix dimensions.
	ErrDims = mat.ErrDims
	// ErrIndexRange marks a matrix entry outside the declared shape.
	ErrIndexRange = mat.ErrIndexRange
	// ErrNonFinite marks a NaN or infinite matrix entry.
	ErrNonFinite = mat.ErrNonFinite
	// ErrDuplicate marks duplicate coordinates in a finalized matrix.
	ErrDuplicate = mat.ErrDuplicate
	// ErrUnsorted marks a finalized matrix with out-of-order entries.
	ErrUnsorted = mat.ErrUnsorted
	// ErrNotFinalized marks a matrix passed to a converter before Finalize.
	ErrNotFinalized = mat.ErrNotFinalized
)

// ConstructionError reports a panic that escaped a format converter on
// input that passed validation — a converter bug or a corruption mode
// Validate does not model. The Checked constructors convert it to an
// error so no public construction path can crash the process.
type ConstructionError struct {
	// Format names the converter that panicked, e.g. "BCSR(2x4)".
	Format string
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *ConstructionError) Error() string {
	return fmt.Sprintf("blockspmv: %s construction panicked: %v", e.Format, e.Value)
}

// NewMatrixChecked is NewMatrix with shape validation: negative or
// index-overflowing dimensions return ErrDims instead of panicking.
func NewMatrixChecked[T Float](rows, cols int) (*Matrix[T], error) {
	return mat.NewChecked[T](rows, cols)
}

// Validate checks the structural integrity of an assembled matrix: every
// entry inside the declared shape, every value finite, and — once
// finalized — entries sorted with no duplicate coordinates. It returns a
// typed error wrapping one of the Err* sentinels on the first violation.
// Run it on externally-assembled or deserialized matrices before feeding
// them to the (panicking, trusting) plain constructors.
func Validate[T Float](m *Matrix[T]) error {
	if m == nil {
		return fmt.Errorf("blockspmv: nil matrix")
	}
	return m.Validate()
}

// MulVecChecked computes y = A*x with explicit dimension checking,
// returning a *DimError on operand-length mismatch instead of panicking
// or reading out of range. Use it when x and y come from untrusted input;
// inner-loop callers that control their buffers use f.Mul directly.
func MulVecChecked[T Float](f Format[T], x, y []T) error {
	if f == nil {
		return fmt.Errorf("blockspmv: nil format")
	}
	if err := formats.CheckDimsErr(f, x, y); err != nil {
		return err
	}
	f.Mul(x, y)
	return nil
}

// MulVecsChecked is MulVecs with explicit panel checking: mismatched
// panel widths return a *PanelError and wrong-length vectors a *DimError
// instead of panicking. An empty panel is a no-op.
func MulVecsChecked[T Float](f Format[T], x, y [][]T) error {
	if f == nil {
		return fmt.Errorf("blockspmv: nil format")
	}
	if err := formats.CheckPanelDimsErr(f, x, y); err != nil {
		return err
	}
	formats.MulVecs(f, x, y)
	return nil
}

// checkedInput gates every Checked constructor: non-nil, finalized,
// structurally valid.
func checkedInput[T Float](m *Matrix[T]) error {
	if m == nil {
		return fmt.Errorf("blockspmv: nil matrix")
	}
	if !m.Finalized() {
		return fmt.Errorf("%w: call Finalize before converting", mat.ErrNotFinalized)
	}
	return m.Validate()
}

// construct runs a format converter under a recover backstop, turning any
// escaped panic into a *ConstructionError.
func construct[T Float](name string, build func() Format[T]) (f Format[T], err error) {
	defer func() {
		if r := recover(); r != nil {
			f, err = nil, &ConstructionError{Format: name, Value: r}
		}
	}()
	return build(), nil
}

// NewCSRChecked is NewCSR over validated input: it rejects nil,
// unfinalized or structurally corrupt matrices with typed errors and
// never panics.
func NewCSRChecked[T Float](m *Matrix[T], impl Impl) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("CSR", func() Format[T] { return csr.FromCOO(m, impl) })
}

// NewCSRCompactChecked is NewCSRCompact over validated input.
func NewCSRCompactChecked[T Float](m *Matrix[T], impl Impl) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("CSR/compact", func() Format[T] { return csr.NewCompact(m, impl) })
}

// NewCSRDUChecked is NewCSRDU over validated input.
func NewCSRDUChecked[T Float](m *Matrix[T], impl Impl) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("CSR-DU", func() Format[T] { return csrdu.New(m, impl) })
}

// NewBCSRChecked is NewBCSR over validated input; bad r, c return a
// *ShapeError.
func NewBCSRChecked[T Float](m *Matrix[T], r, c int, impl Impl) (Format[T], error) {
	if err := blocks.RectShape(r, c).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSR(%dx%d)", r, c)
	return construct(name, func() Format[T] { return bcsr.New(m, r, c, impl) })
}

// NewBCSRCompactChecked is NewBCSRCompact over validated input.
func NewBCSRCompactChecked[T Float](m *Matrix[T], r, c int, impl Impl) (Format[T], error) {
	if err := blocks.RectShape(r, c).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSR(%dx%d)/compact", r, c)
	return construct(name, func() Format[T] { return bcsr.NewCompact(m, r, c, impl) })
}

// NewBCSRDecChecked is NewBCSRDec over validated input.
func NewBCSRDecChecked[T Float](m *Matrix[T], r, c int, impl Impl) (Format[T], error) {
	if err := blocks.RectShape(r, c).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSR-DEC(%dx%d)", r, c)
	return construct(name, func() Format[T] { return bcsr.NewDecomposed(m, r, c, impl) })
}

// NewUBCSRChecked is NewUBCSR over validated input.
func NewUBCSRChecked[T Float](m *Matrix[T], r, c int, impl Impl) (Format[T], error) {
	if err := blocks.RectShape(r, c).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("UBCSR(%dx%d)", r, c)
	return construct(name, func() Format[T] { return ubcsr.New(m, r, c, impl) })
}

// NewBCSDChecked is NewBCSD over validated input; bad b returns a
// *ShapeError.
func NewBCSDChecked[T Float](m *Matrix[T], b int, impl Impl) (Format[T], error) {
	if err := blocks.DiagShape(b).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSD(%d)", b)
	return construct(name, func() Format[T] { return bcsd.New(m, b, impl) })
}

// NewBCSDCompactChecked is NewBCSDCompact over validated input.
func NewBCSDCompactChecked[T Float](m *Matrix[T], b int, impl Impl) (Format[T], error) {
	if err := blocks.DiagShape(b).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSD(%d)/compact", b)
	return construct(name, func() Format[T] { return bcsd.NewCompact(m, b, impl) })
}

// NewBCSDDecChecked is NewBCSDDec over validated input.
func NewBCSDDecChecked[T Float](m *Matrix[T], b int, impl Impl) (Format[T], error) {
	if err := blocks.DiagShape(b).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("BCSD-DEC(%d)", b)
	return construct(name, func() Format[T] { return bcsd.NewDecomposed(m, b, impl) })
}

// NewVBLChecked is NewVBL over validated input.
func NewVBLChecked[T Float](m *Matrix[T], impl Impl) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("1D-VBL", func() Format[T] { return vbl.New(m, impl) })
}

// NewVBRChecked is NewVBR over validated input.
func NewVBRChecked[T Float](m *Matrix[T], impl Impl) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("VBR", func() Format[T] { return vbr.New(m, impl) })
}

// NewSELLChecked is NewSELL over validated input: a non-positive chunk
// height or a matrix too wide for the requested layout comes back as an
// error instead of a panic. Any sigma is accepted (non-positive means
// whole-matrix sorting).
func NewSELLChecked[T Float](m *Matrix[T], chunk, sigma int, impl Impl) (Format[T], error) {
	if chunk < 1 {
		return nil, fmt.Errorf("blockspmv: SELL chunk height %d (want >= 1)", chunk)
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("SELL-%d-%s", chunk, sell.SigmaName(sigma))
	return construct(name, func() Format[T] { return sell.New(m, chunk, sigma, impl) })
}

// NewMultiDecChecked is NewMultiDec over validated input; bad r, c or b
// return a *ShapeError.
func NewMultiDecChecked[T Float](m *Matrix[T], r, c, b int, impl Impl) (Format[T], error) {
	if err := blocks.RectShape(r, c).Check(); err != nil {
		return nil, err
	}
	if err := blocks.DiagShape(b).Check(); err != nil {
		return nil, err
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("MultiDec(%dx%d,d%d)", r, c, b)
	return construct(name, func() Format[T] { return multidec.New(m, r, c, b, impl) })
}

// NewDCSRChecked is NewDCSR over validated input.
func NewDCSRChecked[T Float](m *Matrix[T]) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct("DCSR", func() Format[T] { return dcsr.New(m) })
}

// NewOverlayChecked is NewOverlay over validated input: a nil or
// corrupt matrix, or a base that was not constructed from m, comes back
// as a typed error instead of a panic.
func NewOverlayChecked[T Float](f Format[T], m *Matrix[T]) (*MutableFormat[T], error) {
	if f == nil {
		return nil, fmt.Errorf("blockspmv: nil format")
	}
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	if f.Rows() != m.Rows() || f.Cols() != m.Cols() || f.NNZ() != int64(m.NNZ()) {
		return nil, fmt.Errorf("blockspmv: overlay base %s (%dx%d, nnz %d) does not match ground truth (%dx%d, nnz %d)",
			f.Name(), f.Rows(), f.Cols(), f.NNZ(), m.Rows(), m.Cols(), m.NNZ())
	}
	return overlay.Wrap(f, m), nil
}

// InstantiateChecked is Instantiate over validated input: the matrix is
// validated like the other Checked constructors, and a panic on a
// malformed candidate (unknown method, shape outside the kernel set)
// comes back as a *ConstructionError.
func InstantiateChecked[T Float](m *Matrix[T], c Candidate) (Format[T], error) {
	if err := checkedInput(m); err != nil {
		return nil, err
	}
	return construct(c.String(), func() Format[T] { return core.Instantiate(m, c) })
}
