package blockspmv_test

import (
	"bytes"
	"math"
	"testing"

	"blockspmv"
)

// buildTestMatrix assembles a small matrix with a blocked region and some
// scattered entries through the public API.
func buildTestMatrix() *blockspmv.Matrix[float64] {
	m := blockspmv.NewMatrix[float64](64, 64)
	for t := 0; t < 8; t++ {
		r0, c0 := t*8, (t*16)%56
		for i := 0; i < 2; i++ {
			for j := 0; j < 4; j++ {
				m.Add(int32(r0+i), int32(c0+j), float64(i*4+j+1))
			}
		}
	}
	for i := 0; i < 64; i++ {
		m.Add(int32(i), int32(i), 2)
	}
	m.Finalize()
	return m
}

func testMachine() blockspmv.Machine {
	return blockspmv.Machine{
		Cores: 1, L1DataBytes: 32 << 10, L2Bytes: 1 << 20, LLCBytes: 1 << 20,
		BandwidthBytesPerSec: 4 << 30, TriadBytes: 4 << 20,
	}
}

func testProfile(t *testing.T) *blockspmv.Profile {
	t.Helper()
	return blockspmv.CollectProfileWith[float64](testMachine(),
		blockspmv.ProfileOptions{TbBytes: 8 << 10, NofBytes: 1 << 20})
}

func mulAndCompare(t *testing.T, m *blockspmv.Matrix[float64], f blockspmv.Format[float64]) {
	t.Helper()
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = float64(i%13) / 13
	}
	want := make([]float64, m.Rows())
	m.MulVec(x, want)
	got := make([]float64, m.Rows())
	f.Mul(x, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("%s: y[%d] = %g, want %g", f.Name(), i, got[i], want[i])
		}
	}
}

func TestAllPublicConstructors(t *testing.T) {
	m := buildTestMatrix()
	for _, f := range []blockspmv.Format[float64]{
		blockspmv.NewCSR(m, blockspmv.Scalar),
		blockspmv.NewCSR(m, blockspmv.Vector),
		blockspmv.NewCSRCompact(m, blockspmv.Scalar),
		blockspmv.NewCSRDU(m, blockspmv.Vector),
		blockspmv.NewBCSRCompact(m, 2, 4, blockspmv.Vector),
		blockspmv.NewBCSDCompact(m, 4, blockspmv.Scalar),
		blockspmv.NewBCSR(m, 2, 4, blockspmv.Scalar),
		blockspmv.NewBCSRDec(m, 2, 4, blockspmv.Vector),
		blockspmv.NewBCSD(m, 4, blockspmv.Scalar),
		blockspmv.NewBCSDDec(m, 4, blockspmv.Scalar),
		blockspmv.NewVBL(m, blockspmv.Scalar),
		blockspmv.NewVBR(m, blockspmv.Scalar),
	} {
		mulAndCompare(t, m, f)
	}
}

func TestAutotuneEndToEnd(t *testing.T) {
	m := buildTestMatrix()
	prof := testProfile(t)
	f, pred := blockspmv.Autotune(m, testMachine(), prof)
	if pred.Seconds <= 0 {
		t.Fatalf("prediction %+v", pred)
	}
	if f.Name() != pred.Cand.String() {
		t.Errorf("instantiated %q for candidate %q", f.Name(), pred.Cand)
	}
	mulAndCompare(t, m, f)
}

func TestRankCoversSelectionSpace(t *testing.T) {
	m := buildTestMatrix()
	prof := testProfile(t)
	for _, model := range blockspmv.Models() {
		preds := blockspmv.Rank(m, model, testMachine(), prof)
		// The paper's 106-candidate space plus the compressed-index
		// variants a 64-column matrix admits (the uint8 mirror of all 106
		// and the two CSR-DU candidates) plus the eight variable-block
		// candidates (VBR and 1D-VBL, heuristic and DP partitions, scalar
		// and simd) plus the 24 SELL-C-σ candidates (3 chunks x 2 sigmas
		// x 2 impls, mirrored at the admitted narrow width).
		if len(preds) != 246 {
			t.Fatalf("%s: ranked %d candidates, want 246", model.Name(), len(preds))
		}
		seen := make(map[string]bool)
		for i := 1; i < len(preds); i++ {
			if preds[i].Seconds < preds[i-1].Seconds {
				t.Fatalf("%s: ranking not sorted", model.Name())
			}
		}
		for _, p := range preds {
			seen[p.Cand.String()] = true
		}
		for _, want := range []string{"CSR", "CSR/ix8", "CSR-DU", "BCSR(2x4)/ix8/simd"} {
			if !seen[want] {
				t.Errorf("%s: candidate %s missing from ranking", model.Name(), want)
			}
		}
	}
}

func TestParallelMulPublic(t *testing.T) {
	m := buildTestMatrix()
	f := blockspmv.NewBCSR(m, 2, 4, blockspmv.Scalar)
	pm := blockspmv.NewParallelMul(f, 3)
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, m.Rows())
	m.MulVec(x, want)
	got := make([]float64, m.Rows())
	pm.MulVec(x, got) // the pool is reusable across calls
	pm.MulVec(x, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("parallel y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	pm.Close()
	if err := pm.MulVec(x, got); err == nil {
		t.Error("MulVec after Close did not return an error")
	}
}

func TestParallelSolvePublic(t *testing.T) {
	// SolverOptions.Workers runs the whole CG iteration on worker pools.
	m := buildTestMatrix()
	sym := blockspmv.NewMatrix[float64](m.Rows(), m.Rows())
	// A·Aᵀ-style SPD stand-in: diagonally dominant tridiagonal system.
	for i := 0; i < m.Rows(); i++ {
		sym.Add(int32(i), int32(i), 4)
		if i > 0 {
			sym.Add(int32(i), int32(i-1), -1)
			sym.Add(int32(i-1), int32(i), -1)
		}
	}
	sym.Finalize()
	f := blockspmv.NewCSR(sym, blockspmv.Scalar)
	b := make([]float64, sym.Rows())
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, sym.Rows())
	st, err := blockspmv.SolveCG(f, b, x, blockspmv.SolverOptions{Tol: 1e-10, Workers: 4})
	if err != nil {
		t.Fatalf("parallel SolveCG: %v (residual %g)", err, st.Residual)
	}
	if st.Residual > 1e-10 {
		t.Errorf("residual %g", st.Residual)
	}
}

func TestMatrixMarketPublicRoundTrip(t *testing.T) {
	m := buildTestMatrix()
	var buf bytes.Buffer
	if err := blockspmv.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := blockspmv.ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip: %d entries, want %d", back.NNZ(), m.NNZ())
	}
}

func TestProfileSaveLoadPublic(t *testing.T) {
	prof := testProfile(t)
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := blockspmv.LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(prof.Entries) {
		t.Fatalf("round trip lost entries")
	}
}

func TestWorkingSetBytes(t *testing.T) {
	m := buildTestMatrix()
	f := blockspmv.NewCSR(m, blockspmv.Scalar)
	want := int64(m.NNZ())*12 + int64(m.Rows()+1)*4 + int64(m.Rows()+m.Cols())*8
	if got := blockspmv.WorkingSetBytes(f); got != want {
		t.Errorf("WorkingSetBytes = %d, want %d", got, want)
	}
}

func TestShapeHelpers(t *testing.T) {
	if s := blockspmv.RectShape(2, 3); s.Elems() != 6 || s.String() != "2x3" {
		t.Errorf("RectShape: %v", s)
	}
	if s := blockspmv.DiagShape(5); s.Elems() != 5 || s.String() != "d5" {
		t.Errorf("DiagShape: %v", s)
	}
}

func TestReorderPublicAPI(t *testing.T) {
	// A shuffled band matrix: RCM should tighten it back up and the
	// permuted product must map back to the original.
	n := 120
	m := blockspmv.NewMatrix[float64](n, n)
	for i := 0; i < n; i++ {
		m.Add(int32(i), int32(i), 2)
		j := (i * 37) % n // scatter couplings
		if j != i {
			m.Add(int32(i), int32(j), -1)
			m.Add(int32(j), int32(i), -1)
		}
	}
	m.Finalize()

	perm, err := blockspmv.RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := blockspmv.Reorder(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%11) / 11
	}
	want := make([]float64, n)
	m.MulVec(x, want)

	f := blockspmv.NewCSR(rm, blockspmv.Scalar)
	yp := make([]float64, n)
	f.Mul(blockspmv.PermuteVec(x, perm), yp)
	got := blockspmv.UnpermuteVec(yp, perm)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("reordered product differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestSolvePublicAPI(t *testing.T) {
	n := 64
	m := blockspmv.NewMatrix[float64](n, n)
	for i := 0; i < n; i++ {
		m.Add(int32(i), int32(i), 4)
		if i+1 < n {
			m.Add(int32(i), int32(i+1), -1)
			m.Add(int32(i+1), int32(i), -1)
		}
	}
	m.Finalize()
	a := blockspmv.NewBCSD(m, 2, blockspmv.Scalar)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	st, err := blockspmv.SolveCG(a, b, x, blockspmv.SolverOptions{})
	if err != nil {
		t.Fatalf("SolveCG: %v (res %g)", err, st.Residual)
	}
	if st.Residual > 1e-9 {
		t.Errorf("residual %g", st.Residual)
	}
}

func TestMultiDecPublicAPI(t *testing.T) {
	m := buildTestMatrix()
	f := blockspmv.NewMultiDec(m, 2, 4, 2, blockspmv.Scalar)
	mulAndCompare(t, m, f)
	if f.StoredScalars() != f.NNZ() {
		t.Errorf("multi-dec stores %d scalars for %d nonzeros", f.StoredScalars(), f.NNZ())
	}
}

func TestDCSRPublicAPI(t *testing.T) {
	m := buildTestMatrix()
	mulAndCompare(t, m, blockspmv.NewDCSR(m))
}

func TestUBCSRPublicAPI(t *testing.T) {
	m := buildTestMatrix()
	mulAndCompare(t, m, blockspmv.NewUBCSR(m, 2, 4, blockspmv.Vector))
}

func TestWithImplPublicAPI(t *testing.T) {
	m := buildTestMatrix()
	f := blockspmv.NewBCSR(m, 2, 4, blockspmv.Scalar)
	v := f.WithImpl(blockspmv.Vector)
	if v.Name() != "BCSR(2x4)/simd" {
		t.Errorf("WithImpl name = %q", v.Name())
	}
	mulAndCompare(t, m, v)
}
