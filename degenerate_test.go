package blockspmv_test

import (
	"testing"

	"blockspmv"
)

// degenerateMatrices covers the shapes that break naive converters: empty
// on one or both axes, square but entryless, and a lone entry.
func degenerateMatrices() map[string]*blockspmv.Matrix[float64] {
	zeroByZero := blockspmv.NewMatrix[float64](0, 0)
	zeroByZero.Finalize()

	rowsOnly := blockspmv.NewMatrix[float64](5, 0)
	rowsOnly.Finalize()

	colsOnly := blockspmv.NewMatrix[float64](0, 5)
	colsOnly.Finalize()

	empty := blockspmv.NewMatrix[float64](6, 6)
	empty.Finalize()

	single := blockspmv.NewMatrix[float64](7, 9)
	single.Add(3, 4, 2.5)
	single.Finalize()

	return map[string]*blockspmv.Matrix[float64]{
		"0x0":    zeroByZero,
		"5x0":    rowsOnly,
		"0x5":    colsOnly,
		"no-nnz": empty,
		"single": single,
	}
}

// allConstructors enumerates every public plain constructor with valid
// shape arguments.
func allConstructors() map[string]func(*blockspmv.Matrix[float64]) blockspmv.Format[float64] {
	return map[string]func(*blockspmv.Matrix[float64]) blockspmv.Format[float64]{
		"CSR": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewCSR(m, blockspmv.Scalar)
		},
		"CSR/compact": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewCSRCompact(m, blockspmv.Scalar)
		},
		"CSR-DU": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewCSRDU(m, blockspmv.Scalar)
		},
		"BCSR": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSR(m, 2, 4, blockspmv.Scalar)
		},
		"BCSR/compact": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSRCompact(m, 2, 4, blockspmv.Scalar)
		},
		"BCSR-DEC": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSRDec(m, 2, 4, blockspmv.Scalar)
		},
		"UBCSR": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewUBCSR(m, 2, 4, blockspmv.Scalar)
		},
		"BCSD": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSD(m, 4, blockspmv.Scalar)
		},
		"BCSD/compact": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSDCompact(m, 4, blockspmv.Scalar)
		},
		"BCSD-DEC": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewBCSDDec(m, 4, blockspmv.Scalar)
		},
		"1D-VBL": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewVBL(m, blockspmv.Scalar)
		},
		"SELL": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewSELL(m, 8, 0, blockspmv.Scalar)
		},
		"SELL/compact": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewSELLCompact(m, 4, 1, blockspmv.Scalar)
		},
		"VBR": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewVBR(m, blockspmv.Scalar)
		},
		"MultiDec": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewMultiDec(m, 2, 4, 2, blockspmv.Scalar)
		},
		"DCSR": func(m *blockspmv.Matrix[float64]) blockspmv.Format[float64] {
			return blockspmv.NewDCSR(m)
		},
	}
}

func TestDegenerateMatricesAllConstructors(t *testing.T) {
	for mname, m := range degenerateMatrices() {
		for fname, build := range allConstructors() {
			f := func() (f blockspmv.Format[float64]) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s on %s: construction panicked: %v", fname, mname, r)
					}
				}()
				return build(m)
			}()
			if f.Rows() != m.Rows() || f.Cols() != m.Cols() {
				t.Errorf("%s on %s: %dx%d, want %dx%d", fname, mname, f.Rows(), f.Cols(), m.Rows(), m.Cols())
			}
			if f.NNZ() != int64(m.NNZ()) {
				t.Errorf("%s on %s: NNZ %d, want %d", fname, mname, f.NNZ(), m.NNZ())
			}
			mulAndCompare(t, m, f)
		}
	}
}

func TestDegenerateMatricesCheckedConstructors(t *testing.T) {
	for mname, m := range degenerateMatrices() {
		for fname, build := range checkedConstructors() {
			f, err := build(m)
			if err != nil {
				t.Fatalf("%s on %s: %v", fname, mname, err)
			}
			mulAndCompare(t, m, f)
		}
	}
}

func TestDegenerateParallelMul(t *testing.T) {
	for mname, m := range degenerateMatrices() {
		f := blockspmv.NewCSR(m, blockspmv.Scalar)
		pm := blockspmv.NewParallelMul(f, 4)
		x := make([]float64, m.Cols())
		y := make([]float64, m.Rows())
		if err := pm.MulVec(x, y); err != nil {
			t.Errorf("%s: MulVec: %v", mname, err)
		}
		pm.Close()
	}
}

func TestDegenerateAutotune(t *testing.T) {
	prof := testProfile(t)
	for mname, m := range degenerateMatrices() {
		f, pred := blockspmv.Autotune(m, testMachine(), prof)
		if f == nil {
			t.Fatalf("%s: no format (prediction %+v)", mname, pred)
		}
		mulAndCompare(t, m, f)
	}
}
