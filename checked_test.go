package blockspmv_test

import (
	"errors"
	"math"
	"testing"

	"blockspmv"
)

// checkedConstructors enumerates every Checked constructor with in-range
// shape arguments, so tests can sweep the whole validated surface.
func checkedConstructors() map[string]func(*blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
	return map[string]func(*blockspmv.Matrix[float64]) (blockspmv.Format[float64], error){
		"CSR": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewCSRChecked(m, blockspmv.Scalar)
		},
		"CSR/compact": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewCSRCompactChecked(m, blockspmv.Scalar)
		},
		"CSR-DU": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewCSRDUChecked(m, blockspmv.Vector)
		},
		"BCSR": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSRChecked(m, 2, 4, blockspmv.Scalar)
		},
		"BCSR/compact": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSRCompactChecked(m, 2, 4, blockspmv.Vector)
		},
		"BCSR-DEC": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSRDecChecked(m, 2, 4, blockspmv.Scalar)
		},
		"UBCSR": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewUBCSRChecked(m, 2, 4, blockspmv.Scalar)
		},
		"BCSD": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSDChecked(m, 4, blockspmv.Scalar)
		},
		"BCSD/compact": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSDCompactChecked(m, 4, blockspmv.Scalar)
		},
		"BCSD-DEC": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewBCSDDecChecked(m, 4, blockspmv.Scalar)
		},
		"1D-VBL": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewVBLChecked(m, blockspmv.Scalar)
		},
		"SELL": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewSELLChecked(m, 8, 0, blockspmv.Scalar)
		},
		"VBR": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewVBRChecked(m, blockspmv.Scalar)
		},
		"MultiDec": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewMultiDecChecked(m, 2, 4, 2, blockspmv.Scalar)
		},
		"DCSR": func(m *blockspmv.Matrix[float64]) (blockspmv.Format[float64], error) {
			return blockspmv.NewDCSRChecked(m)
		},
	}
}

func TestCheckedConstructorsHappyPath(t *testing.T) {
	m := buildTestMatrix()
	for name, build := range checkedConstructors() {
		f, err := build(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mulAndCompare(t, m, f)
	}
}

func TestCheckedConstructorsRejectBadInput(t *testing.T) {
	unfinalized := blockspmv.NewMatrix[float64](8, 8)
	unfinalized.Add(0, 0, 1)

	for name, build := range checkedConstructors() {
		if _, err := build(nil); err == nil {
			t.Errorf("%s: nil matrix accepted", name)
		}
		if _, err := build(unfinalized); !errors.Is(err, blockspmv.ErrNotFinalized) {
			t.Errorf("%s: unfinalized matrix: err = %v, want ErrNotFinalized", name, err)
		}

		nan := buildTestMatrix()
		nan.Entries()[3].Val = math.NaN()
		if _, err := build(nan); !errors.Is(err, blockspmv.ErrNonFinite) {
			t.Errorf("%s: NaN entry: err = %v, want ErrNonFinite", name, err)
		}

		oob := buildTestMatrix()
		oob.Entries()[0].Col = 1 << 20
		if _, err := build(oob); !errors.Is(err, blockspmv.ErrIndexRange) {
			t.Errorf("%s: out-of-range entry: err = %v, want ErrIndexRange", name, err)
		}

		dup := buildTestMatrix()
		e := dup.Entries()
		e[1] = e[0]
		if _, err := build(dup); !errors.Is(err, blockspmv.ErrDuplicate) {
			t.Errorf("%s: duplicate entry: err = %v, want ErrDuplicate", name, err)
		}

		unsorted := buildTestMatrix()
		e = unsorted.Entries()
		e[0], e[1] = e[1], e[0]
		if _, err := build(unsorted); !errors.Is(err, blockspmv.ErrUnsorted) {
			t.Errorf("%s: unsorted entries: err = %v, want ErrUnsorted", name, err)
		}
	}
}

func TestCheckedConstructorsRejectBadShapes(t *testing.T) {
	m := buildTestMatrix()
	var se *blockspmv.ShapeError

	badRect := [][2]int{{0, 4}, {2, 0}, {-1, 2}, {3, 3}, {2, 5}, {9, 1}}
	for _, rc := range badRect {
		if _, err := blockspmv.NewBCSRChecked(m, rc[0], rc[1], blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSR %dx%d: err = %v, want *ShapeError", rc[0], rc[1], err)
		}
		if _, err := blockspmv.NewBCSRCompactChecked(m, rc[0], rc[1], blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSR/compact %dx%d: err = %v, want *ShapeError", rc[0], rc[1], err)
		}
		if _, err := blockspmv.NewBCSRDecChecked(m, rc[0], rc[1], blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSR-DEC %dx%d: err = %v, want *ShapeError", rc[0], rc[1], err)
		}
		if _, err := blockspmv.NewUBCSRChecked(m, rc[0], rc[1], blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("UBCSR %dx%d: err = %v, want *ShapeError", rc[0], rc[1], err)
		}
		if _, err := blockspmv.NewMultiDecChecked(m, rc[0], rc[1], 2, blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("MultiDec rect %dx%d: err = %v, want *ShapeError", rc[0], rc[1], err)
		}
	}
	for _, c := range []int{-4, 0} {
		if _, err := blockspmv.NewSELLChecked(m, c, 1, blockspmv.Scalar); err == nil {
			t.Errorf("SELL chunk %d: accepted, want error", c)
		}
	}
	for _, b := range []int{-3, 0, 1, 9, 1 << 30} {
		if _, err := blockspmv.NewBCSDChecked(m, b, blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSD d%d: err = %v, want *ShapeError", b, err)
		}
		if _, err := blockspmv.NewBCSDCompactChecked(m, b, blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSD/compact d%d: err = %v, want *ShapeError", b, err)
		}
		if _, err := blockspmv.NewBCSDDecChecked(m, b, blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("BCSD-DEC d%d: err = %v, want *ShapeError", b, err)
		}
		if _, err := blockspmv.NewMultiDecChecked(m, 2, 4, b, blockspmv.Scalar); !errors.As(err, &se) {
			t.Errorf("MultiDec d%d: err = %v, want *ShapeError", b, err)
		}
	}
}

func TestNewMatrixChecked(t *testing.T) {
	if _, err := blockspmv.NewMatrixChecked[float64](-1, 4); !errors.Is(err, blockspmv.ErrDims) {
		t.Errorf("negative rows: err = %v, want ErrDims", err)
	}
	if _, err := blockspmv.NewMatrixChecked[float64](4, 1<<40); !errors.Is(err, blockspmv.ErrDims) {
		t.Errorf("huge cols: err = %v, want ErrDims", err)
	}
	m, err := blockspmv.NewMatrixChecked[float64](4, 4)
	if err != nil || m == nil {
		t.Fatalf("valid shape: %v", err)
	}
}

func TestMulVecChecked(t *testing.T) {
	m := buildTestMatrix()
	f := blockspmv.NewCSR(m, blockspmv.Scalar)

	x := make([]float64, m.Cols())
	y := make([]float64, m.Rows())
	if err := blockspmv.MulVecChecked(f, x, y); err != nil {
		t.Fatalf("matching dims: %v", err)
	}

	var de *blockspmv.DimError
	if err := blockspmv.MulVecChecked(f, x[:m.Cols()-1], y); !errors.As(err, &de) {
		t.Errorf("short x: err = %v, want *DimError", err)
	}
	if err := blockspmv.MulVecChecked(f, x, y[:m.Rows()-1]); !errors.As(err, &de) {
		t.Errorf("short y: err = %v, want *DimError", err)
	}
	if err := blockspmv.MulVecChecked[float64](nil, x, y); err == nil {
		t.Error("nil format accepted")
	}
}

func TestInstantiateChecked(t *testing.T) {
	m := buildTestMatrix()
	prof := testProfile(t)
	preds := blockspmv.Rank(m, blockspmv.Models()[0], testMachine(), prof)
	f, err := blockspmv.InstantiateChecked(m, preds[0].Cand)
	if err != nil {
		t.Fatalf("InstantiateChecked(best): %v", err)
	}
	mulAndCompare(t, m, f)

	var ce *blockspmv.ConstructionError
	if _, err := blockspmv.InstantiateChecked(m, blockspmv.Candidate{Method: 99}); !errors.As(err, &ce) {
		t.Errorf("unknown method: err = %v, want *ConstructionError", err)
	}
	bad := buildTestMatrix()
	bad.Entries()[0].Row = -5
	if _, err := blockspmv.InstantiateChecked(bad, preds[0].Cand); !errors.Is(err, blockspmv.ErrIndexRange) {
		t.Errorf("corrupt matrix: err = %v, want ErrIndexRange", err)
	}
}

func TestValidatePublic(t *testing.T) {
	m := buildTestMatrix()
	if err := blockspmv.Validate(m); err != nil {
		t.Fatalf("valid matrix: %v", err)
	}
	if err := blockspmv.Validate[float64](nil); err == nil {
		t.Error("nil matrix accepted")
	}
	m.Entries()[2].Val = math.Inf(1)
	if err := blockspmv.Validate(m); !errors.Is(err, blockspmv.ErrNonFinite) {
		t.Errorf("Inf entry: err = %v, want ErrNonFinite", err)
	}
}
