// Fromfile: load a real matrix in Matrix Market format and report the
// structural statistics, each model's format selection, and a measured
// confirmation — the workflow for using this library on matrices from the
// SuiteSparse (Tim Davis) collection, which the paper evaluates on.
//
// Run with: go run ./examples/fromfile matrix.mtx
// (Without an argument, a small built-in demo matrix is used.)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"blockspmv"
)

func main() {
	m, name := loadMatrix()
	fmt.Printf("%s: %dx%d, %d nonzeros\n", name, m.Rows(), m.Cols(), m.NNZ())

	fmt.Println("characterising machine and profiling kernels...")
	mach := blockspmv.DetectMachine()
	prof := blockspmv.CollectProfileWith[float64](mach,
		blockspmv.ProfileOptions{NofBytes: 32 << 20})

	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	y := make([]float64, m.Rows())

	fmt.Printf("\n%-10s %-22s %12s %12s\n", "model", "selection", "predicted", "measured")
	for _, model := range blockspmv.Models() {
		preds := blockspmv.Rank(m, model, mach, prof)
		sel := preds[0]
		inst := blockspmv.Instantiate(m, sel.Cand)
		inst.Mul(x, y)
		start := time.Now()
		const reps = 10
		for r := 0; r < reps; r++ {
			inst.Mul(x, y)
		}
		measured := time.Since(start).Seconds() / reps
		fmt.Printf("%-10s %-22s %9.3g ms %9.3g ms\n",
			model.Name(), sel.Cand, sel.Seconds*1e3, measured*1e3)
	}
}

func loadMatrix() (*blockspmv.Matrix[float64], string) {
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		m, err := blockspmv.ReadMatrixMarket[float64](f)
		if err != nil {
			log.Fatal(err)
		}
		return m, os.Args[1]
	}
	// Built-in demo: a pentadiagonal band matrix in MatrixMarket text.
	var sb strings.Builder
	n := 3000
	var entries []string
	for i := 0; i < n; i++ {
		for j := max(0, i-2); j <= min(n-1, i+2); j++ {
			entries = append(entries, fmt.Sprintf("%d %d %g", i+1, j+1, 1.0+float64((i+j)%5)))
		}
	}
	fmt.Fprintf(&sb, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n%s\n",
		n, n, len(entries), strings.Join(entries, "\n"))
	m, err := blockspmv.ReadMatrixMarket[float64](strings.NewReader(sb.String()))
	if err != nil {
		log.Fatal(err)
	}
	return m, "built-in demo (pentadiagonal band)"
}
