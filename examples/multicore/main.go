// Multicore: run the multithreaded SpMV of Section V with the paper's
// static load-balancing scheme (equal stored scalars per thread, padding
// included) and show the partition and scaling for 1, 2 and 4 workers.
//
// Run with: go run ./examples/multicore
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"blockspmv"
)

func main() {
	// A matrix with a skewed density profile: the bottom quarter carries
	// most of the nonzeros, so naive equal-rows splitting would leave
	// three threads idle while one does the work.
	const n = 300_000
	rng := rand.New(rand.NewSource(3))
	m := blockspmv.NewMatrix[float64](n, n)
	for r := 0; r < n; r++ {
		per := 3
		if r >= 3*n/4 {
			per = 24
		}
		for k := 0; k < per; k++ {
			m.Add(int32(r), int32(rng.Intn(n)), rng.Float64()+0.1)
		}
	}
	m.Finalize()
	fmt.Printf("matrix: %dx%d, %d nonzeros (bottom quarter is 8x denser)\n",
		m.Rows(), m.Cols(), m.NNZ())
	fmt.Printf("host has %d usable CPUs (GOMAXPROCS=%d)\n\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))

	format := blockspmv.NewCSR(m, blockspmv.Scalar)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, n)

	var t1 float64
	for _, workers := range []int{1, 2, 4} {
		// The executor is a persistent worker pool: create it once, reuse
		// it for every multiply, Close it when done. Workers stay pinned
		// to their row ranges and are woken per call with no goroutine
		// spawns or allocations — the repeated-multiply traffic pattern
		// of an iterative solver costs only the kernels themselves.
		pm := blockspmv.NewParallelMul(format, workers)

		// Show how the balanced partition cuts the rows.
		fmt.Printf("%d worker(s): partition rows = %v\n", workers, pm.Ranges())
		weights := pm.PartWeights()
		fmt.Printf("              stored scalars per part = %v\n", weights)

		pm.MulVec(x, y) // warm up
		const reps = 10
		start := time.Now()
		for r := 0; r < reps; r++ {
			pm.MulVec(x, y)
		}
		secs := time.Since(start).Seconds() / reps
		if workers == 1 {
			t1 = secs
		}
		fmt.Printf("              %.3g ms per SpMV (speedup %.2fx)\n\n", secs*1e3, t1/secs)
		pm.Close() // retire the pool's workers
	}
	fmt.Println("note: speedups require as many free CPUs as workers; on a")
	fmt.Println("single-CPU host the partitioning still balances the work but")
	fmt.Println("the goroutines time-share one core.")
}
