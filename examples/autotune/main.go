// Autotune: use the OVERLAP performance model to pick the best storage
// format and block shape for a FEM-style matrix, then confirm the choice
// by timing the top candidates.
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"
	"math/rand"
	"time"

	"blockspmv"
)

func main() {
	m := femMatrix(6000, 3, 8) // 3 dof per node -> dense 3x3 node blocks
	fmt.Printf("FEM-style matrix: %dx%d, %d nonzeros\n", m.Rows(), m.Cols(), m.NNZ())

	fmt.Println("characterising machine and profiling kernels (one-time, ~a minute)...")
	mach := blockspmv.DetectMachine()
	fmt.Printf("  %s\n", mach)
	prof := blockspmv.CollectProfileWith[float64](mach,
		blockspmv.ProfileOptions{NofBytes: 32 << 20})

	format, pred := blockspmv.Autotune(m, mach, prof)
	fmt.Printf("\nOVERLAP model selected: %s (predicted %.3g ms per SpMV)\n",
		format.Name(), pred.Seconds*1e3)

	// Show the model's top five and time them for a reality check.
	overlap, _ := blockspmv.ModelByName("OVERLAP")
	preds := blockspmv.Rank(m, overlap, mach, prof)
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = rand.New(rand.NewSource(1)).Float64()
	}
	y := make([]float64, m.Rows())
	fmt.Println("\nrank  candidate            predicted    measured")
	for i := 0; i < 5 && i < len(preds); i++ {
		inst := blockspmv.Instantiate(m, preds[i].Cand)
		inst.Mul(x, y) // warm up
		start := time.Now()
		const reps = 20
		for r := 0; r < reps; r++ {
			inst.Mul(x, y)
		}
		measured := time.Since(start).Seconds() / reps
		fmt.Printf("%4d  %-20s %8.3g ms %8.3g ms\n",
			i+1, preds[i].Cand, preds[i].Seconds*1e3, measured*1e3)
	}
}

// femMatrix builds a mesh of nodes with dof unknowns each; every node
// adjacency becomes a dense dof x dof block.
func femMatrix(nodes, dof, neighbours int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(7))
	n := nodes * dof
	m := blockspmv.NewMatrix[float64](n, n)
	addBlock := func(a, b int) {
		for i := 0; i < dof; i++ {
			for j := 0; j < dof; j++ {
				m.Add(int32(a*dof+i), int32(b*dof+j), rng.Float64()+0.1)
			}
		}
	}
	for u := 0; u < nodes; u++ {
		addBlock(u, u)
		for d := 1; d <= neighbours/2; d++ {
			if v := u + d; v < nodes {
				addBlock(u, v)
				addBlock(v, u)
			}
		}
	}
	m.Finalize()
	return m
}
