// Autotune: use the OVERLAP performance model to pick the best storage
// format and block shape for a FEM-style matrix, then confirm the choice
// by timing the top candidates. A second act perturbs the FEM structure —
// dropping a few entries per row, as real assembly does — and shows the
// selection switch to the DP-partitioned VBR, whose cost-model-driven
// partitioner aggregates rows with merely similar patterns. A third act
// moves to a power-law graph — no adjacency at all, the regime where
// every blocked format loses to CSR — and shows the profiled selection
// pick SELL-C-σ while the pure MEM model, blind to the computational
// term, still insists on CSR.
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"
	"math/rand"
	"time"

	"blockspmv"
)

func main() {
	m := femMatrix(6000, 3, 8) // 3 dof per node -> dense 3x3 node blocks
	fmt.Printf("FEM-style matrix: %dx%d, %d nonzeros\n", m.Rows(), m.Cols(), m.NNZ())

	fmt.Println("characterising machine and profiling kernels (one-time, ~a minute)...")
	mach := blockspmv.DetectMachine()
	fmt.Printf("  %s\n", mach)
	prof := blockspmv.CollectProfileWith[float64](mach,
		blockspmv.ProfileOptions{NofBytes: 32 << 20})

	format, pred := blockspmv.Autotune(m, mach, prof)
	fmt.Printf("\nOVERLAP model selected: %s (predicted %.3g ms per SpMV)\n",
		format.Name(), pred.Seconds*1e3)

	// Show the model's top five and time them for a reality check.
	overlap, _ := blockspmv.ModelByName("OVERLAP")
	preds := blockspmv.Rank(m, overlap, mach, prof)
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = rand.New(rand.NewSource(1)).Float64()
	}
	y := make([]float64, m.Rows())
	fmt.Println("\nrank  candidate            predicted    measured")
	for i := 0; i < 5 && i < len(preds); i++ {
		inst := blockspmv.Instantiate(m, preds[i].Cand)
		inst.Mul(x, y) // warm up
		start := time.Now()
		const reps = 20
		for r := 0; r < reps; r++ {
			inst.Mul(x, y)
		}
		measured := time.Since(start).Seconds() / reps
		fmt.Printf("%4d  %-20s %8.3g ms %8.3g ms\n",
			i+1, preds[i].Cand, preds[i].Seconds*1e3, measured*1e3)
	}

	// Act two: perturbed shared sparsity. Real FEM assembly leaves node
	// groups with nearly — not exactly — identical row patterns, which
	// breaks both fixed-shape blocking (padding) and run-detection VBR
	// (fragmentation). The DP partitioner aggregates the groups anyway,
	// trading a little fill for far fewer per-block indices, and the MEM
	// model (pure stream pricing, no profile needed) selects it.
	m2 := perturbedFEM(2400, 70000)
	fmt.Printf("\nperturbed shared-sparsity matrix: %dx%d, %d nonzeros\n",
		m2.Rows(), m2.Cols(), m2.NNZ())
	memModel, _ := blockspmv.ModelByName("MEM")
	format2, pred2 := blockspmv.AutotuneWith(m2, memModel, mach, nil)
	fmt.Printf("MEM model selected: %s (predicted %.3g ms; %.2f B/nnz vs CSR's %.2f)\n",
		format2.Name(), pred2.Seconds*1e3,
		float64(format2.MatrixBytes())/float64(m2.NNZ()),
		float64(blockspmv.NewCSR(m2, blockspmv.Scalar).MatrixBytes())/float64(m2.NNZ()))
	heur := blockspmv.NewVBR(m2, blockspmv.Scalar)
	fmt.Printf("run-detection VBR would stream %.2f B/nnz — worse than CSR\n",
		float64(heur.MatrixBytes())/float64(m2.NNZ()))

	// Act three: scatter-dominated rows. A power-law graph has no nonzero
	// adjacency to block, so the whole blocked family loses to CSR and the
	// only remaining lever is the kernel itself. SELL-C-σ sorts rows by
	// length, pads C-row slices to their own longest row and drives the C
	// rows in lockstep — the profiled OVERLAP model prices that lower
	// per-scalar time and selects it, while MEM (bytes only) must refuse:
	// a padded stream plus a stored permutation always exceeds CSR's bytes.
	m3 := powerLawGraph(60000, 12)
	fmt.Printf("\npower-law graph: %dx%d, %d nonzeros\n", m3.Rows(), m3.Cols(), m3.NNZ())
	format3, pred3 := blockspmv.Autotune(m3, mach, prof)
	csr3 := blockspmv.NewCSR(m3, blockspmv.Scalar)
	fmt.Printf("OVERLAP model selected: %s (predicted %.3g ms; %.2f B/nnz vs CSR's %.2f)\n",
		format3.Name(), pred3.Seconds*1e3,
		float64(format3.MatrixBytes())/float64(m3.NNZ()),
		float64(csr3.MatrixBytes())/float64(m3.NNZ()))
	format3mem, _ := blockspmv.AutotuneWith(m3, memModel, mach, nil)
	fmt.Printf("MEM model selected: %s — blind to the compute term SELL wins on\n",
		format3mem.Name())
	for _, inst := range []blockspmv.Format[float64]{csr3, format3} {
		x3 := make([]float64, m3.Cols())
		y3 := make([]float64, m3.Rows())
		inst.Mul(x3, y3) // warm up
		start := time.Now()
		const reps = 20
		for r := 0; r < reps; r++ {
			inst.Mul(x3, y3)
		}
		fmt.Printf("  %-20s measured %.3g ms\n", inst.Name(),
			time.Since(start).Seconds()/reps*1e3)
	}
}

// powerLawGraph builds a graph whose out-degrees follow a heavy-tailed
// distribution with scattered targets — the scatter archetype SELL-C-σ
// is built for.
func powerLawGraph(n, avg int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.6, 1, uint64(8*avg))
	m := blockspmv.NewMatrix[float64](n, n)
	seen := map[[2]int32]bool{}
	for r := 0; r < n; r++ {
		deg := int(zipf.Uint64()) + 1
		for k := 0; k < deg; k++ {
			c := int32(rng.Intn(n))
			key := [2]int32{int32(r), c}
			if seen[key] {
				continue
			}
			seen[key] = true
			m.Add(int32(r), c, rng.Float64()+0.5)
		}
	}
	m.Finalize()
	return m
}

// perturbedFEM builds row groups of varying height sharing four 3-column
// dof nodes, with 4% of the entries dropped per row — shared sparsity
// without exactly identical patterns.
func perturbedFEM(rows, cols int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(77))
	m := blockspmv.NewMatrix[float64](rows, cols)
	for r0 := 0; r0 < rows; {
		h := 9 + rng.Intn(6)
		var base []int32
		for n := 0; n < 4; n++ {
			c0 := int32(rng.Intn(cols - 3))
			base = append(base, c0, c0+1, c0+2)
		}
		for r := r0; r < r0+h && r < rows; r++ {
			for _, c := range base {
				if rng.Float64() < 0.04 {
					continue
				}
				m.Add(int32(r), c, rng.Float64()+0.5)
			}
		}
		r0 += h
	}
	m.Finalize()
	return m
}

// femMatrix builds a mesh of nodes with dof unknowns each; every node
// adjacency becomes a dense dof x dof block.
func femMatrix(nodes, dof, neighbours int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(7))
	n := nodes * dof
	m := blockspmv.NewMatrix[float64](n, n)
	addBlock := func(a, b int) {
		for i := 0; i < dof; i++ {
			for j := 0; j < dof; j++ {
				m.Add(int32(a*dof+i), int32(b*dof+j), rng.Float64()+0.1)
			}
		}
	}
	for u := 0; u < nodes; u++ {
		addBlock(u, u)
		for d := 1; d <= neighbours/2; d++ {
			if v := u + d; v < nodes {
				addBlock(u, v)
				addBlock(v, u)
			}
		}
	}
	m.Finalize()
	return m
}
