// Solver: run a conjugate-gradient solve on a 2D Poisson problem with the
// CSR baseline and with the autotuned blocked format, showing the
// end-to-end effect of format selection on an SpMV-dominated workload.
//
// Run with: go run ./examples/solver
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"blockspmv"
)

func main() {
	// 2D Poisson (5-point Laplacian) on a 300x300 grid, discretised with
	// 3 unknowns per node to give it FEM-like block structure.
	const side, dof = 220, 3
	m := laplacianBlocks(side, dof)
	n := m.Rows()
	fmt.Printf("system: %d unknowns, %d nonzeros\n", n, m.NNZ())

	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}

	fmt.Println("characterising machine and profiling kernels...")
	mach := blockspmv.DetectMachine()
	prof := blockspmv.CollectProfileWith[float64](mach,
		blockspmv.ProfileOptions{NofBytes: 32 << 20})

	csr := blockspmv.NewCSR(m, blockspmv.Scalar)
	tuned, pred := blockspmv.Autotune(m, mach, prof)
	fmt.Printf("autotuner picked %s (predicted %.3g ms per SpMV)\n\n",
		tuned.Name(), pred.Seconds*1e3)

	for _, f := range []blockspmv.Format[float64]{csr, tuned} {
		x := make([]float64, n)
		start := time.Now()
		st, err := blockspmv.SolveCG(f, b, x, blockspmv.SolverOptions{Tol: 1e-8})
		if err != nil {
			log.Fatalf("%s: %v", f.Name(), err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-16s %4d iterations, %4d SpMVs, residual %.2e, %v\n",
			f.Name(), st.Iterations, st.SpMVs, st.Residual, elapsed.Round(time.Millisecond))
	}

	// The same solve with the whole iteration — SpMV and vector kernels —
	// on the persistent worker pools (cmd/solvebench sweeps this knob).
	workers := runtime.NumCPU()
	x := make([]float64, n)
	start := time.Now()
	st, err := blockspmv.SolveCG(tuned, b, x, blockspmv.SolverOptions{Tol: 1e-8, Workers: workers})
	if err != nil {
		log.Fatalf("parallel %s: %v", tuned.Name(), err)
	}
	fmt.Printf("%-16s %4d iterations, %4d SpMVs, residual %.2e, %v  (%d workers)\n",
		tuned.Name(), st.Iterations, st.SpMVs, st.Residual,
		time.Since(start).Round(time.Millisecond), workers)
}

// laplacianBlocks builds a block version of the 5-point Laplacian: each
// grid point carries dof unknowns coupled within the point, so every
// stencil entry becomes a dense dof x dof block.
func laplacianBlocks(side, dof int) *blockspmv.Matrix[float64] {
	n := side * side * dof
	m := blockspmv.NewMatrix[float64](n, n)
	addBlock := func(p, q int, scale float64) {
		for i := 0; i < dof; i++ {
			for j := 0; j < dof; j++ {
				v := scale
				if i != j {
					v *= 0.1
				}
				m.Add(int32(p*dof+i), int32(q*dof+j), v)
			}
		}
	}
	for j := 0; j < side; j++ {
		for i := 0; i < side; i++ {
			p := j*side + i
			addBlock(p, p, 4)
			if i > 0 {
				addBlock(p, p-1, -1)
			}
			if i < side-1 {
				addBlock(p, p+1, -1)
			}
			if j > 0 {
				addBlock(p, p-side, -1)
			}
			if j < side-1 {
				addBlock(p, p+side, -1)
			}
		}
	}
	m.Finalize()
	return m
}
