// Modelstudy: compare the predictions of the MEM, MEMCOMP and OVERLAP
// models against measured execution times on two structurally opposite
// matrices — a block-friendly FEM archetype and an irregular power-law
// graph — illustrating Figure 3's finding that MEM under-predicts,
// MEMCOMP over-predicts, and OVERLAP tracks reality closest.
//
// Run with: go run ./examples/modelstudy
package main

import (
	"fmt"
	"math/rand"
	"time"

	"blockspmv"
)

func main() {
	fmt.Println("characterising machine and profiling kernels...")
	mach := blockspmv.DetectMachine()
	fmt.Printf("  %s\n\n", mach)
	prof := blockspmv.CollectProfileWith[float64](mach,
		blockspmv.ProfileOptions{NofBytes: 32 << 20})

	matrices := map[string]*blockspmv.Matrix[float64]{
		"fem-blocks (regular)":   femMatrix(5000, 3, 10),
		"power-law  (irregular)": graphMatrix(60_000, 8),
	}
	candidates := []blockspmv.Candidate{}
	// Study a representative cross-section of the candidate space.
	overlap, _ := blockspmv.ModelByName("OVERLAP")

	for name, m := range matrices {
		fmt.Printf("=== %s: %dx%d, %d nnz ===\n", name, m.Rows(), m.Cols(), m.NNZ())
		preds := blockspmv.Rank(m, overlap, mach, prof)
		candidates = candidates[:0]
		// Best, median and worst by the OVERLAP ranking, plus CSR.
		candidates = append(candidates,
			preds[0].Cand, preds[len(preds)/2].Cand, preds[len(preds)-1].Cand)

		fmt.Printf("%-22s %10s %10s %10s %10s\n", "candidate", "measured", "MEM", "MEMCOMP", "OVERLAP")
		for _, cand := range candidates {
			inst := blockspmv.Instantiate(m, cand)
			measured := timeMul(m, inst)
			fmt.Printf("%-22s %8.3g ms", cand, measured*1e3)
			for _, model := range blockspmv.Models() {
				pred := predictOne(m, model, cand, mach, prof)
				fmt.Printf(" %8.3g ms", pred*1e3)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("reading the rows: MEM is a lower bound (ignores compute),")
	fmt.Println("MEMCOMP an upper bound (assumes no overlap), OVERLAP in between.")
}

func predictOne(m *blockspmv.Matrix[float64], model blockspmv.Model, cand blockspmv.Candidate,
	mach blockspmv.Machine, prof *blockspmv.Profile) float64 {
	for _, p := range blockspmv.Rank(m, model, mach, prof) {
		if p.Cand == cand {
			return p.Seconds
		}
	}
	return 0
}

func timeMul(m *blockspmv.Matrix[float64], inst blockspmv.Format[float64]) float64 {
	x := make([]float64, m.Cols())
	for i := range x {
		x[i] = float64(i%17) / 17
	}
	y := make([]float64, m.Rows())
	inst.Mul(x, y)
	const reps = 10
	start := time.Now()
	for r := 0; r < reps; r++ {
		inst.Mul(x, y)
	}
	return time.Since(start).Seconds() / reps
}

func femMatrix(nodes, dof, neighbours int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(7))
	n := nodes * dof
	m := blockspmv.NewMatrix[float64](n, n)
	addBlock := func(a, b int) {
		for i := 0; i < dof; i++ {
			for j := 0; j < dof; j++ {
				m.Add(int32(a*dof+i), int32(b*dof+j), rng.Float64()+0.1)
			}
		}
	}
	for u := 0; u < nodes; u++ {
		addBlock(u, u)
		for d := 1; d <= neighbours/2; d++ {
			if v := u + d; v < nodes {
				addBlock(u, v)
				addBlock(v, u)
			}
		}
	}
	m.Finalize()
	return m
}

func graphMatrix(n, avg int) *blockspmv.Matrix[float64] {
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(n-1))
	m := blockspmv.NewMatrix[float64](n, n)
	for r := 0; r < n; r++ {
		deg := 1 + rng.Intn(2*avg)
		for e := 0; e < deg; e++ {
			c := int(zipf.Uint64())
			c = (c*2654435761 + r) % n
			if c < 0 {
				c += n
			}
			m.Add(int32(r), int32(c), rng.Float64()+0.1)
		}
	}
	m.Finalize()
	return m
}
