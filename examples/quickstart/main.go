// Quickstart: assemble a sparse matrix, convert it to a blocked format,
// multiply, and verify against the assembly-form reference product.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"blockspmv"
)

func main() {
	// Assemble a 1000x1000 matrix from 2x4 dense tiles along a band plus
	// a unit diagonal — the kind of local structure a finite-element
	// discretisation produces.
	const n = 1000
	m := blockspmv.NewMatrix[float64](n, n)
	for t := 0; t+2 <= n/4; t++ {
		r0, c0 := t*2, (t*4%(n-4))/4*4
		for i := 0; i < 2; i++ {
			for j := 0; j < 4; j++ {
				m.Add(int32(r0+i), int32(c0+j), float64(1+i+j))
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Add(int32(i), int32(i), 4)
	}
	m.Finalize()
	fmt.Printf("assembled %dx%d matrix with %d nonzeros\n", m.Rows(), m.Cols(), m.NNZ())

	// Convert to a few formats and compare their footprints. The compact
	// constructors narrow the column indices to the smallest width the
	// matrix admits (2-byte here: 1000 columns), and CSR-DU delta-encodes
	// them into a byte stream — same multiply, smaller matrix stream.
	csr := blockspmv.NewCSR(m, blockspmv.Scalar)
	bcsr := blockspmv.NewBCSR(m, 2, 4, blockspmv.Scalar)
	dec := blockspmv.NewBCSRDec(m, 2, 4, blockspmv.Scalar)
	compact := blockspmv.NewCSRCompact(m, blockspmv.Scalar)
	du := blockspmv.NewCSRDU(m, blockspmv.Scalar)
	bcompact := blockspmv.NewBCSRCompact(m, 2, 4, blockspmv.Scalar)
	for _, f := range []blockspmv.Format[float64]{csr, bcsr, dec, compact, du, bcompact} {
		fmt.Printf("  %-16s stores %6d scalars (%5d padding) in %7d bytes\n",
			f.Name(), f.StoredScalars(), f.StoredScalars()-f.NNZ(), f.MatrixBytes())
	}

	// Multiply with the blocked format and verify against the reference.
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%10) / 10
	}
	y := make([]float64, n)
	bcsr.Mul(x, y)

	want := make([]float64, n)
	m.MulVec(x, want)
	var maxDiff float64
	for i := range y {
		maxDiff = math.Max(maxDiff, math.Abs(y[i]-want[i]))
	}
	if maxDiff > 1e-9 {
		log.Fatalf("verification failed: max diff %g", maxDiff)
	}
	fmt.Printf("BCSR(2x4) product verified against the reference (max diff %.2g)\n", maxDiff)
}
